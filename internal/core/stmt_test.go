package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/pathexpr"
	"repro/internal/ssd"
	"repro/internal/workload"
)

func TestSniffLang(t *testing.T) {
	cases := []struct {
		src  string
		lang Lang
		body string
	}{
		{`select T from DB.Entry.Movie.Title T`, LangQuery, `select T from DB.Entry.Movie.Title T`},
		{`SELECT T from DB.a T`, LangQuery, `SELECT T from DB.a T`},
		{`query: select T from DB.a T`, LangQuery, `select T from DB.a T`},
		{`Entry.Movie.Title`, LangPath, `Entry.Movie.Title`},
		{`path: delete`, LangPath, `delete`},
		{`reach(X) :- root(X).`, LangDatalog, `reach(X) :- root(X).`},
		{`datalog: reach(X) :- root(X).`, LangDatalog, `reach(X) :- root(X).`},
		{`relabel Title to TITLE`, LangTransform, `relabel Title to TITLE`},
		{`unql: delete References`, LangTransform, `delete References`},
		// A ":-" inside a string literal is data, not a datalog rule.
		{`_*."x:-y"`, LangPath, `_*."x:-y"`},
	}
	for _, c := range cases {
		lang, body := SniffLang(c.src)
		if lang != c.lang || body != c.body {
			t.Errorf("SniffLang(%q) = (%s, %q), want (%s, %q)", c.src, lang, body, c.lang, c.body)
		}
	}
}

// TestStmtQueryParams: prepare once, execute many with different
// arguments; results match the equivalent literal queries.
func TestStmtQueryParams(t *testing.T) {
	db := fig1DB(t)
	s, err := db.Prepare(`select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = $who`)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Params(); len(got) != 1 || got[0] != "who" {
		t.Fatalf("Params = %v", got)
	}
	for _, who := range []string{"Allen", "Bogart"} {
		res, err := s.Exec(context.Background(), P("who", who))
		if err != nil {
			t.Fatal(err)
		}
		lit, err := db.Query(fmt.Sprintf(`select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = "%s"`, who))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equal(lit) {
			t.Errorf("who=%s: prepared result differs from literal query", who)
		}
	}
	// Argument validation.
	if _, err := s.Exec(context.Background()); err == nil {
		t.Error("missing parameter should error")
	}
	if _, err := s.Exec(context.Background(), P("who", "Allen"), P("x", 1)); err == nil {
		t.Error("unknown parameter should error")
	}
	if _, err := s.Exec(context.Background(), P("who", "Allen"), P("who", "Bogart")); err == nil {
		t.Error("duplicate parameter should error")
	}
}

// TestStmtRowsStreaming: the Rows cursor yields the same tuples as the
// materializing QueryRows wrapper, and Scan reads typed columns.
func TestStmtRowsStreaming(t *testing.T) {
	db := fig1DB(t)
	const src = `select T from DB.Entry.Movie M, M.Title T`
	s, err := db.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	if cols := s.Columns(); len(cols) != 2 || cols[0] != "M" || cols[1] != "T" {
		t.Fatalf("Columns = %v", cols)
	}
	rows, err := s.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var streamed []ssd.NodeID
	for rows.Next() {
		var m, tn ssd.NodeID
		if err := rows.Scan(&m, &tn); err != nil {
			t.Fatal(err)
		}
		env := rows.Env()
		if env.Trees["M"] != m || env.Trees["T"] != tn {
			t.Fatal("Scan and Env disagree")
		}
		streamed = append(streamed, tn)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	envs, err := db.QueryRows(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != len(streamed) {
		t.Fatalf("QueryRows %d rows, streamed %d", len(envs), len(streamed))
	}
	for i, e := range envs {
		if e.Trees["T"] != streamed[i] {
			t.Errorf("row %d: QueryRows T=%d, streamed %d", i, e.Trees["T"], streamed[i])
		}
	}

	// Label and path columns: Scan's positional slot reads must agree with
	// Env's by-name lookups — this is the cross-check that keeps the
	// statement layer's column order in sync with the planner's slots.
	ls, err := db.Prepare(`select {%L: @P} from DB.@P X, X.%L Y where pathlen(@P) = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if cols := ls.Columns(); len(cols) != 4 || cols[0] != "X" || cols[1] != "Y" || cols[2] != "%L" || cols[3] != "@P" {
		t.Fatalf("Columns = %v", cols)
	}
	lrows, err := ls.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer lrows.Close()
	seen := 0
	for lrows.Next() {
		var x, y ssd.NodeID
		var l ssd.Label
		var p []ssd.Label
		if err := lrows.Scan(&x, &y, &l, &p); err != nil {
			t.Fatal(err)
		}
		env := lrows.Env()
		if env.Trees["X"] != x || env.Trees["Y"] != y ||
			!env.Labels["L"].Equal(l) || len(env.Paths["P"]) != len(p) {
			t.Fatal("Scan and Env disagree on label/path columns")
		}
		seen++
	}
	if seen == 0 {
		t.Fatal("label/path query yielded no rows")
	}
}

// TestStmtPath: path statements stream nodes and support parameters.
func TestStmtPath(t *testing.T) {
	db := fig1DB(t)
	s, err := db.Prepare(`path: Entry.$kind.Title`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Lang() != LangPath {
		t.Fatalf("lang = %s", s.Lang())
	}
	drain := func(args ...Param) []ssd.NodeID {
		rows, err := s.Query(context.Background(), args...)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		var out []ssd.NodeID
		for rows.Next() {
			var n ssd.NodeID
			if err := rows.Scan(&n); err != nil {
				t.Fatal(err)
			}
			out = append(out, n)
		}
		return out
	}
	movies := drain(P("kind", ssd.Sym("Movie")))
	want, err := db.PathQuery("Entry.Movie.Title")
	if err != nil {
		t.Fatal(err)
	}
	if len(movies) != len(want) {
		t.Fatalf("param path %d nodes, literal %d", len(movies), len(want))
	}
	if shows := drain(P("kind", ssd.Sym("TV-Show"))); len(shows) != 1 {
		t.Fatalf("TV-Show titles = %d, want 1", len(shows))
	}
	// Path statements have no graph result.
	if _, err := s.Exec(context.Background(), P("kind", ssd.Sym("Movie"))); err == nil {
		t.Error("Exec on path statement should error")
	}
	// The legacy entry points cannot bind parameters, so they must reject
	// them rather than compile a match-nothing predicate.
	if _, err := db.PathQueryIndexed("Entry.$kind.Title"); err == nil {
		t.Error("PathQueryIndexed with $param should error")
	}
	if _, err := db.PathQuery("Entry.$kind.Title"); err == nil {
		t.Error("PathQuery with $param should error")
	}
}

// TestStmtDatalog: datalog statements stream the materialized tuples.
func TestStmtDatalog(t *testing.T) {
	db := fig1DB(t)
	const prog = `reach(X) :- root(X). reach(Y) :- reach(X), edge(X, _, Y).`
	s, err := db.Prepare("datalog: " + prog)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := s.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		var rel, tup string
		if err := rows.Scan(&rel, &tup); err != nil {
			t.Fatal(err)
		}
		if rel != "reach" {
			t.Fatalf("rel = %q", rel)
		}
		n++
	}
	rels, err := db.Datalog(prog)
	if err != nil {
		t.Fatal(err)
	}
	if want := rels["reach"].Len(); n != want {
		t.Fatalf("streamed %d tuples, engine has %d", n, want)
	}
}

// TestStmtTransform: the unql mini-language restructures like the legacy
// Transform family, including a parameterized target label.
func TestStmtTransform(t *testing.T) {
	db := fig1DB(t)
	s, err := db.Prepare(`unql: relabel Title to $new`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Exec(context.Background(), P("new", ssd.Sym("TITLE")))
	if err != nil {
		t.Fatal(err)
	}
	want := db.RelabelWhere(pathexpr.ExactPred{L: ssd.Sym("Title")}, ssd.Sym("TITLE"))
	if !got.Equal(want) {
		t.Fatal("transform statement differs from RelabelWhere")
	}
	if _, err := s.Query(context.Background(), P("new", ssd.Sym("TITLE"))); err == nil {
		t.Error("Query on transform statement should error")
	}

	del, err := db.Prepare(`unql: delete References`)
	if err != nil {
		t.Fatal(err)
	}
	trimmed, err := del.Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if refs, _ := trimmed.PathQuery("_*.References"); len(refs) != 0 {
		t.Fatalf("References survived delete: %d", len(refs))
	}

	// The deprecated Query wrapper must not silently execute a transform
	// that its caller meant as (mistyped) query text.
	if _, err := db.Query("delete Title"); err == nil {
		t.Error("db.Query on transform text should error")
	}
}

// TestPlanCacheInvalidation: a commit swaps the snapshot; the statement
// re-plans lazily and sees the new data, while a cursor opened before the
// commit keeps reading its own snapshot — a stale plan never touches a
// new graph version.
func TestPlanCacheInvalidation(t *testing.T) {
	db := fig1DB(t)
	const titles = `select T from DB.Entry.Movie.Title T`
	s, err := db.Prepare(titles)
	if err != nil {
		t.Fatal(err)
	}
	countRows := func(rows *Rows) int {
		defer rows.Close()
		n := 0
		for rows.Next() {
			n++
		}
		return n
	}
	before, err := s.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := countRows(before); got != 2 {
		t.Fatalf("before commit: %d rows, want 2", got)
	}

	// Open a cursor, THEN commit, then drain: the cursor's snapshot is
	// pinned, so it still sees the old state.
	pinned, err := s.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	g := db.Graph()
	entry := g.LookupFirst(g.Root(), ssd.Sym("Entry"))
	movie := g.LookupFirst(entry, ssd.Sym("Movie"))
	b := db.Begin()
	titleNode := b.AddNode()
	leaf := b.AddNode()
	if err := b.AddEdge(movie, ssd.Sym("Title"), titleNode); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(titleNode, ssd.Str("Play It Again"), leaf); err != nil {
		t.Fatal(err)
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if got := countRows(pinned); got != 2 {
		t.Fatalf("pinned cursor after commit: %d rows, want 2 (old snapshot)", got)
	}

	// A fresh execution re-plans against the new snapshot.
	after, err := s.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := countRows(after); got != 3 {
		t.Fatalf("after commit: %d rows, want 3", got)
	}
}

// TestStmtCancellation: a context cancelled mid-iteration stops the Rows
// cursor promptly and surfaces context.Canceled.
func TestStmtCancellation(t *testing.T) {
	db := FromGraph(workload.Movies(workload.DefaultMovieConfig(2000)))
	s, err := db.Prepare(`select X from DB._* X`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := s.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("no first row")
	}
	cancel()
	extra := 0
	for rows.Next() {
		extra++
	}
	if rows.Err() != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", rows.Err())
	}
	if extra > 100 {
		t.Fatalf("cursor produced %d rows after cancellation", extra)
	}

	// Path statements cancel the same way.
	ps, err := db.Prepare(`path: _*`)
	if err != nil {
		t.Fatal(err)
	}
	pctx, pcancel := context.WithCancel(context.Background())
	prows, err := ps.Query(pctx)
	if err != nil {
		t.Fatal(err)
	}
	defer prows.Close()
	if !prows.Next() {
		t.Fatal("no first path row")
	}
	pcancel()
	for prows.Next() {
	}
	if prows.Err() != context.Canceled {
		t.Fatalf("path Err = %v, want context.Canceled", prows.Err())
	}
}

// TestConcurrentStmtQueryDuringCommits is the -race test: many goroutines
// execute one shared prepared statement while a writer commits batches.
// Every execution must see a consistent snapshot (2 + commits-so-far
// titles) and never race on plan state.
func TestConcurrentStmtQueryDuringCommits(t *testing.T) {
	db := fig1DB(t)
	s, err := db.Prepare(`select T from DB.Entry.Movie.Title T`)
	if err != nil {
		t.Fatal(err)
	}
	const (
		readers = 8
		rounds  = 20
		commits = 15
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers*rounds+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < commits; i++ {
			g := db.Graph()
			entry := g.LookupFirst(g.Root(), ssd.Sym("Entry"))
			movie := g.LookupFirst(entry, ssd.Sym("Movie"))
			b := db.Begin()
			titleNode := b.AddNode()
			leaf := b.AddNode()
			if err := b.AddEdge(movie, ssd.Sym("Title"), titleNode); err != nil {
				errs <- err
				return
			}
			if err := b.AddEdge(titleNode, ssd.Str(fmt.Sprintf("Sequel %d", i)), leaf); err != nil {
				errs <- err
				return
			}
			if err := db.Apply(b); err != nil {
				errs <- err
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				rows, err := s.Query(context.Background())
				if err != nil {
					errs <- err
					return
				}
				n := 0
				for rows.Next() {
					n++
				}
				rows.Close()
				if n < 2 || n > 2+commits {
					errs <- fmt.Errorf("inconsistent row count %d", n)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
