package core

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bisim"
	"repro/internal/mutate"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/storage"
)

func canonDB(db *Database) string { return ssd.FormatRoot(bisim.Canonicalize(db.Graph())) }

// commitN commits n single-edge scripts, each adding one distinctly
// labeled leaf under the root, so states after different counts are
// distinguishable.
func commitN(t *testing.T, db *Database, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		if err := db.MutateScript(fmt.Sprintf("addnode; addedge 0 %d $0", i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenPathFreshRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, db, 0, 4)
	want := canonDB(db)
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseWAL()
	if got := canonDB(re); got != want {
		t.Fatalf("recovered state differs:\nwant %s\ngot  %s", want, got)
	}
	ri := re.LastRecovery()
	if ri.SnapshotPath != "" || ri.Replayed != 4 || ri.Skipped != 0 {
		t.Fatalf("recovery = %+v, want full replay of 4 from empty", ri)
	}
}

// TestCheckpointReplaysOnlyTail is the replay-count probe: after a
// checkpoint covering N batches and M more commits, a restart must replay
// exactly M — the WAL tail — and still be byte-identical to the live
// database under bisim.Canonicalize.
func TestCheckpointReplaysOnlyTail(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, db, 0, 5)
	info, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.Truncated != 5 || info.Seq != 1 {
		t.Fatalf("checkpoint info = %+v, want 5 batches folded into seq 1", info)
	}
	commitN(t, db, 5, 3)
	want := canonDB(db)
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseWAL()
	ri := re.LastRecovery()
	if ri.Replayed != 3 {
		t.Fatalf("replayed %d batches, want only the 3-batch tail (recovery %+v)", ri.Replayed, ri)
	}
	if ri.SnapshotPath != info.Path || ri.SnapshotSeq != 1 {
		t.Fatalf("recovered from %q seq %d, want %q seq 1", ri.SnapshotPath, ri.SnapshotSeq, info.Path)
	}
	if got := canonDB(re); got != want {
		t.Fatalf("restart after checkpoint differs:\nwant %s\ngot  %s", want, got)
	}
	// The restored snapshot carries live derived structures.
	if len(re.FindString("never-there")) != 0 {
		t.Fatal("value index answered nonsense")
	}
}

// TestCheckpointChain runs several checkpoint/commit rounds and checks
// generation bookkeeping: old generations are pruned to current+previous,
// and every restart replays only its tail.
func TestCheckpointChain(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	at := 0
	for round := 0; round < 4; round++ {
		commitN(t, db, at, 2)
		at += 2
		if _, err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	commitN(t, db, at, 1)
	want := canonDB(db)
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	cands, err := snapshotFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 || cands[0].seq != 4 || cands[1].seq != 3 {
		t.Fatalf("generations on disk: %+v, want exactly seq 4 and 3", cands)
	}
	re, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseWAL()
	if ri := re.LastRecovery(); ri.SnapshotSeq != 4 || ri.Replayed != 1 {
		t.Fatalf("recovery %+v, want seq 4 with a 1-batch tail", ri)
	}
	if got := canonDB(re); got != want {
		t.Fatal("multi-round recovery differs from live state")
	}
}

// TestCrashSafetyFallsBackToPreviousSnapshot simulates the three ways a
// checkpoint write can die mid-flight — a temp file that never got renamed,
// a truncated section, a CRC-corrupt section — and asserts recovery falls
// back to the previous generation plus a full WAL replay, byte-identical
// to the pre-crash state.
func TestCrashSafetyFallsBackToPreviousSnapshot(t *testing.T) {
	setup := func(t *testing.T) (dir, want string, snap1 []byte) {
		dir = t.TempDir()
		db, err := OpenPath(dir)
		if err != nil {
			t.Fatal(err)
		}
		commitN(t, db, 0, 3)
		if _, err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		commitN(t, db, 3, 2) // the tail a fallback recovery must replay
		want = canonDB(db)
		if err := db.CloseWAL(); err != nil {
			t.Fatal(err)
		}
		snap1, err = os.ReadFile(filepath.Join(dir, snapName(1)))
		if err != nil {
			t.Fatal(err)
		}
		return dir, want, snap1
	}

	check := func(t *testing.T, dir, want string) {
		re, err := OpenPath(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer re.CloseWAL()
		ri := re.LastRecovery()
		if ri.SnapshotSeq != 1 || ri.Replayed != 2 {
			t.Fatalf("recovery %+v, want fallback to seq 1 + 2-batch replay", ri)
		}
		if got := canonDB(re); got != want {
			t.Fatalf("fallback recovery differs:\nwant %s\ngot  %s", want, got)
		}
	}

	t.Run("missing rename", func(t *testing.T) {
		dir, want, snap1 := setup(t)
		// The interrupted write reached the temp name only.
		tmp := filepath.Join(dir, snapName(2)+".tmp")
		if err := os.WriteFile(tmp, snap1[:len(snap1)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, dir, want)
	})
	t.Run("truncated section", func(t *testing.T) {
		dir, want, snap1 := setup(t)
		bad := filepath.Join(dir, snapName(2))
		if err := os.WriteFile(bad, snap1[:len(snap1)-7], 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, dir, want)
	})
	t.Run("bad crc", func(t *testing.T) {
		dir, want, snap1 := setup(t)
		mut := append([]byte(nil), snap1...)
		mut[len(mut)/2] ^= 0x20
		bad := filepath.Join(dir, snapName(2))
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		check(t, dir, want)
	})
}

// TestInterruptedTruncationSkipsFoldedPrefix simulates a crash between the
// snapshot rename and the log truncation: the newest generation is valid
// but the log is still bound to its base and holds batches the snapshot
// already folded in. Recovery must skip exactly that prefix, replay the
// tail, and complete the truncation.
func TestInterruptedTruncationSkipsFoldedPrefix(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, db, 0, 5)
	folded := db.Graph() // immutable snapshot: state after 5 batches
	commitN(t, db, 5, 2)
	want := canonDB(db)
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Hand-write what an interrupted checkpoint leaves: a valid generation
	// recording (base binding, 5 folded batches), with the log untouched.
	s := &storage.Snapshot{
		Graph:     folded,
		WALBaseFP: mutate.Fingerprint(ssd.New()), // the empty base OpenPath started from
		Applied:   5,
	}
	if _, err := storage.WriteSnapshotFile(filepath.Join(dir, snapName(1)), s); err != nil {
		t.Fatal(err)
	}

	re, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	ri := re.LastRecovery()
	if ri.Skipped != 5 || ri.Replayed != 2 {
		t.Fatalf("recovery %+v, want 5 skipped + 2 replayed", ri)
	}
	if got := canonDB(re); got != want {
		t.Fatalf("recovery differs:\nwant %s\ngot  %s", want, got)
	}
	if err := re.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// The truncation was completed: the next open sees a clean binding.
	re2, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.CloseWAL()
	if ri := re2.LastRecovery(); ri.Skipped != 0 || ri.Replayed != 2 {
		t.Fatalf("second recovery %+v, want clean 2-batch tail", ri)
	}
}

// TestCheckpointTruncateRace is the -race regression for the checkpoint/
// commit interleaving: commits land continuously while checkpoints run,
// and no batch may fall between a generation and the truncated log. The
// final restart must reconstruct every committed batch.
func TestCheckpointTruncateRace(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	const commits = 60
	var wg sync.WaitGroup
	wg.Add(1)
	done := make(chan struct{})
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < commits; i++ {
			if err := db.MutateScript(fmt.Sprintf("addnode; addedge 0 %d $0", i)); err != nil {
				t.Errorf("commit %d: %v", i, err)
				return
			}
		}
	}()
	for {
		if _, err := db.Checkpoint(); err != nil {
			t.Error(err)
			break
		}
		select {
		case <-done:
		default:
			continue
		}
		break
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// One final checkpoint after the writer stopped, then verify both the
	// live state and a cold restart hold all committed batches.
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := canonDB(db)
	if got := db.Graph().NumEdges(); got != commits {
		t.Fatalf("live state has %d edges, want %d", got, commits)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseWAL()
	if got := canonDB(re); got != want {
		t.Fatal("restart after racing checkpoints lost a commit")
	}
	if ri := re.LastRecovery(); ri.Replayed != 0 {
		t.Fatalf("final checkpoint covered everything, but %d batches replayed", ri.Replayed)
	}
}

func TestSavePathThenOpenPath(t *testing.T) {
	src, err := ParseText(`{movie: {title: "Casablanca", year: 1942}, movie: {title: "Sleeper"}}`)
	if err != nil {
		t.Fatal(err)
	}
	src.DataGuide() // build it so the export carries a guide section
	dir := t.TempDir()
	if err := src.SavePath(dir); err != nil {
		t.Fatal(err)
	}
	if err := src.SavePath(dir); err == nil {
		t.Fatal("SavePath over an existing durable directory succeeded")
	}

	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.CloseWAL()
	if got, want := canonDB(db), canonDB(src); got != want {
		t.Fatalf("exported state differs:\nwant %s\ngot  %s", want, got)
	}
	// The export is a real durable directory: commits log and checkpoint.
	commitN(t, db, 100, 1)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`select T from DB.movie.title T`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph().NumEdges() == 0 {
		t.Fatal("query over restored database returned nothing")
	}
}

// TestOpenPathExclusiveLock pins single-process ownership: a second open
// of a held directory must fail (two writers would interleave WAL frames
// and truncate each other's commits), and closing releases the lock.
func TestOpenPathExclusiveLock(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPath(dir); err == nil {
		t.Fatal("second OpenPath succeeded while the directory is held")
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenPath(dir)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	db2.CloseWAL()
}

// TestClosedDurableRefusesCommits: once CloseWAL has closed a directory-
// backed database, a commit must fail rather than publish a state neither
// the log nor any generation holds.
func TestClosedDurableRefusesCommits(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, db, 0, 1)
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	if err := db.MutateScript("addnode; addedge 0 Lost $0"); err == nil {
		t.Fatal("commit on a closed durable database succeeded")
	}
	b := db.Begin()
	n := b.AddNode()
	if err := b.AddEdge(db.Graph().Root(), ssd.Sym("Lost"), n); err != nil {
		t.Fatal(err)
	}
	if err := db.Apply(b); err == nil {
		t.Fatal("Apply on a closed durable database succeeded")
	}
	if _, err := db.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on a closed durable database succeeded")
	}
}

// TestCheckpointNoOp: with nothing committed since the newest generation,
// Checkpoint must not rewrite the snapshot — an idle database (and its
// interval checkpointer) checkpoints for free.
func TestCheckpointNoOp(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.CloseWAL()
	// A brand-new directory has no generation: the first checkpoint writes
	// one even with zero batches.
	first, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if first.NoOp || first.Seq != 1 {
		t.Fatalf("first checkpoint = %+v, want a real generation 1", first)
	}
	fi1, err := os.Stat(first.Path)
	if err != nil {
		t.Fatal(err)
	}
	again, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !again.NoOp || again.Seq != 1 || again.Path != first.Path {
		t.Fatalf("idle checkpoint = %+v, want NoOp pointing at generation 1", again)
	}
	fi2, err := os.Stat(first.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !fi2.ModTime().Equal(fi1.ModTime()) || fi2.Size() != fi1.Size() {
		t.Fatal("idle checkpoint rewrote the snapshot file")
	}
	// New commits make the next checkpoint real again.
	commitN(t, db, 0, 1)
	info, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.NoOp || info.Seq != 2 || info.Truncated != 1 {
		t.Fatalf("post-commit checkpoint = %+v, want generation 2 folding 1", info)
	}
}

func TestCheckpointRequiresOpenPath(t *testing.T) {
	db, err := ParseText(`{a: 1}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on a non-durable database succeeded")
	}
	dir := t.TempDir()
	if err := db.OpenWAL(filepath.Join(dir, "x.wal")); err != nil {
		t.Fatal(err)
	}
	defer db.CloseWAL()
	if err := db.CompactWAL(filepath.Join(dir, "x.ssdg")); err != nil {
		t.Fatal(err) // legacy path still works on non-durable databases
	}
}

// TestRecoveredStatsMatchRebuild pins the statistics lifecycle across a
// restart: a checkpoint persists the stats section, recovery restores it and
// folds the WAL tail in via delta maintenance — so the reopened database has
// planner statistics immediately, without a rebuild pass, and they are
// exactly what a from-scratch build over the recovered graph produces.
func TestRecoveredStatsMatchRebuild(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, db, 0, 5)
	db.snapshot().statistics() // force-build so commits maintain incrementally
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitN(t, db, 5, 3) // WAL tail: applied to the restored stats on reopen
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseWAL()
	snap := re.snapshot()
	snap.mu.Lock()
	restored := snap.stats
	snap.mu.Unlock()
	if restored == nil {
		t.Fatal("recovered snapshot has no statistics: the snapshot section was not restored")
	}
	want := stats.Build(snap.g)
	if !reflect.DeepEqual(restored.Dump(), want.Dump()) {
		t.Fatalf("recovered stats differ from rebuild:\ngot  %+v\nwant %+v", restored.Dump(), want.Dump())
	}
}
