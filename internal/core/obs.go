package core

// Process-wide metrics for the engine layers this package owns: query
// execution (latency, rows, errors), the per-statement plan pool, the LRU
// statement cache, and the durability path (commits, checkpoints,
// recovery). All register on obs.Default at init; the serving layer
// exposes that registry at /metrics.

import "repro/internal/obs"

var (
	obsQueryDur = obs.Default.Histogram("ssd_query_duration_seconds",
		"Statement execution latency, open to Rows.Close (Exec end to end).")
	obsQueries = obs.Default.Counter("ssd_queries_total",
		"Statement executions completed (all languages, Query and Exec).")
	obsQueryRows = obs.Default.Counter("ssd_query_rows_total",
		"Result rows streamed to statement consumers.")
	obsQueryErrors = obs.Default.Counter("ssd_query_errors_total",
		"Statement executions that terminated with an error.")

	obsPlansPooled = obs.Default.Counter("ssd_plans_pooled_total",
		"Plan checkouts served from a statement's per-snapshot pool.")
	obsPlansBuilt = obs.Default.Counter("ssd_plans_built_total",
		"Plan checkouts that compiled a fresh plan.")
	obsParallelQueries = obs.Default.Counter("ssd_parallel_queries_total",
		"Query executions dispatched to the morsel-driven parallel executor.")

	obsStmtHits = obs.Default.Counter("ssd_stmt_cache_hits_total",
		"PrepareCached lookups served from the statement LRU.")
	obsStmtMisses = obs.Default.Counter("ssd_stmt_cache_misses_total",
		"PrepareCached lookups that parsed the statement fresh.")
	obsStmtEvictions = obs.Default.Counter("ssd_stmt_cache_evictions_total",
		"Statements evicted from the LRU to make room.")

	obsCommitDur = obs.Default.Histogram("ssd_commit_duration_seconds",
		"Write-batch commit latency: validation, WAL append, snapshot publish.")
	obsCommits = obs.Default.Counter("ssd_commits_total",
		"Write batches committed.")

	obsCkptDur = obs.Default.Histogram("ssd_checkpoint_duration_seconds",
		"Checkpoint latency: snapshot encode, fsync, WAL truncation.")
	obsCkpts = obs.Default.Counter("ssd_checkpoints_total",
		"Checkpoints completed (no-op skips excluded).")
	obsCkptGen = obs.Default.Gauge("ssd_checkpoint_generation",
		"Sequence number of the snapshot most recently checkpointed.")

	obsRecoveryReplayed = obs.Default.Gauge("ssd_recovery_replayed_batches",
		"WAL batches replayed by the most recent OpenPath recovery.")
	obsRecoverySkipped = obs.Default.Gauge("ssd_recovery_skipped_batches",
		"WAL batches skipped as pre-snapshot by the most recent recovery.")
)
