package core

import (
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/bisim"
	"repro/internal/pathexpr"
	"repro/internal/query"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// canonQuery runs a query and returns the canonical byte representation of
// its result value.
func canonQuery(t *testing.T, db *Database, src string) string {
	t.Helper()
	res, err := db.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	return ssd.FormatRoot(bisim.Canonicalize(res.Graph()))
}

// TestMutationInvalidatesCaches is the stale-cache regression test: build
// every derived structure, mutate, and verify that queries, browsing
// lookups, the DataGuide, and the planner all reflect the new version.
func TestMutationInvalidatesCaches(t *testing.T) {
	db := FromGraph(workload.Fig1(false))

	const titles = `select T from DB.Entry.Movie.Title T`
	before := canonQuery(t, db, titles)
	// Force every lazy structure on the current snapshot.
	if hits := db.FindString("Casablanca"); len(hits) == 0 {
		t.Fatal("value index found nothing")
	}
	if len(db.Browse(2, 10)) == 0 {
		t.Fatal("guide found nothing")
	}
	guideBefore := db.DataGuide()

	// Mutate: attach a second movie title through the write path.
	g := db.Graph()
	entry := g.LookupFirst(g.Root(), ssd.Sym("Entry"))
	movie := g.LookupFirst(entry, ssd.Sym("Movie"))
	b := db.Begin()
	titleNode := b.AddNode()
	leaf := b.AddNode()
	if err := b.AddEdge(movie, ssd.Sym("Title"), titleNode); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(titleNode, ssd.Str("Play It Again"), leaf); err != nil {
		t.Fatal(err)
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}

	// The planned query (through the incrementally maintained label index)
	// and the naive engine must both see the new edge — and agree.
	after := canonQuery(t, db, titles)
	if after == before {
		t.Fatal("query result unchanged after mutation: stale cache")
	}
	res, err := db.Query(titles)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := db.QueryEngine(titles, query.EngineNaive)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(naive) {
		t.Fatal("planned and naive engines disagree after mutation")
	}
	// Value index: the new string is findable.
	if hits := db.FindString("Play It Again"); len(hits) != 1 {
		t.Fatalf("FindString after mutation = %v", hits)
	}
	// Old strings still findable (delta didn't clobber shared postings).
	if hits := db.FindString("Casablanca"); len(hits) == 0 {
		t.Fatal("old string lost after mutation")
	}
	// DataGuide: incrementally extended, not the stale pointer.
	if db.DataGuide() == guideBefore {
		t.Fatal("DataGuide not refreshed after mutation")
	}

	// Legacy wholesale edits return fresh handles whose caches restart.
	db2 := db.DeleteEdges(pathexpr.ExactPred{L: ssd.Sym("Title")})
	if got := canonQuery(t, db2, titles); got != "{}" {
		t.Fatalf("DeleteEdges result still has titles: %s", got)
	}
	if hits := db2.FindString("Casablanca"); len(hits) != 0 {
		t.Fatalf("fresh handle served stale value index: %v", hits)
	}
	// And the receiver is untouched.
	if got := canonQuery(t, db, titles); got != after {
		t.Fatal("legacy transformation mutated the receiver")
	}
}

// TestCommitWALReplay is the acceptance test: a WAL written by one process,
// replayed by core.Open + OpenWAL in a fresh process, yields a database
// whose query results are byte-identical via bisim.Canonicalize.
func TestCommitWALReplay(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.ssdg")
	logPath := filepath.Join(dir, "wal")

	queries := []string{
		`select T from DB.Entry.Movie.Title T`,
		`select {Who: D} from DB.Entry.Movie M, M.Director D`,
		`select X from DB._*.Year X`,
	}

	// "Process 1": persist the base, open a WAL, commit batches.
	db := FromGraph(workload.Fig1(false))
	if err := db.Save(base); err != nil {
		t.Fatal(err)
	}
	if err := db.OpenWAL(logPath); err != nil {
		t.Fatal(err)
	}
	g := db.Graph()
	entry := g.LookupFirst(g.Root(), ssd.Sym("Entry"))
	movie := g.LookupFirst(entry, ssd.Sym("Movie"))

	b := db.Begin()
	year := b.AddNode()
	leaf := b.AddNode()
	must(t, b.AddEdge(movie, ssd.Sym("Year"), year))
	must(t, b.AddEdge(year, ssd.Int(1942), leaf))
	must(t, db.Commit(b))

	b = db.Begin()
	must(t, b.Relabel(movie, ssd.Sym("Director"), ssd.Sym("DirectedBy")))
	must(t, b.SetOID(movie, "&m1"))
	must(t, db.Commit(b))

	b = db.Begin()
	title := db.Graph().LookupFirst(movie, ssd.Sym("Title"))
	must(t, b.DeleteEdge(movie, ssd.Sym("Title"), title))
	must(t, db.Commit(b))
	must(t, db.CloseWAL())

	// "Process 2": fresh handle from the files alone.
	db2, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.OpenWAL(logPath); err != nil {
		t.Fatal(err)
	}

	if want, got := ssd.FormatRoot(bisim.Canonicalize(db.Graph())), ssd.FormatRoot(bisim.Canonicalize(db2.Graph())); got != want {
		t.Fatalf("replayed database differs:\n got %s\nwant %s", got, want)
	}
	for _, q := range queries {
		if want, got := canonQuery(t, db, q), canonQuery(t, db2, q); got != want {
			t.Fatalf("query %q differs after replay:\n got %s\nwant %s", q, got, want)
		}
	}
	if id, ok := db2.Graph().OIDOf(movie); !ok || id != "&m1" {
		t.Fatalf("oid lost in replay: %q, %v", id, ok)
	}

	// Compaction: snapshot + truncated log still reopens identically.
	must(t, db2.CompactWAL(base))
	must(t, db2.CloseWAL())
	db3, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := db3.OpenWAL(logPath); err != nil {
		t.Fatal(err)
	}
	if want, got := canonQuery(t, db, queries[0]), canonQuery(t, db3, queries[0]); got != want {
		t.Fatal("compacted database diverged")
	}
}

// TestConcurrentReadersDuringCommit drives queries, browsing lookups and
// guide reads while a writer commits batches — the snapshot-swap
// concurrency this must survive under -race (see ci.yml).
func TestConcurrentReadersDuringCommit(t *testing.T) {
	db := FromGraph(workload.Movies(workload.DefaultMovieConfig(80)))
	// Pre-build structures so commits exercise incremental maintenance.
	db.FindString("nothing")
	db.DataGuide()
	db.Browse(2, 5)

	const readers = 4
	const commits = 60
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.Query(`select T from DB.Entry.Movie.Title T`)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Stats().Nodes == 0 {
					t.Error("empty result graph")
					return
				}
				db.FindString("tag-value")
				db.Browse(2, 5)
				db.IntsGreaterThan(1 << 30)
			}
		}(r)
	}

	g := db.Graph()
	entry := g.LookupFirst(g.Root(), ssd.Sym("Entry"))
	for i := 0; i < commits; i++ {
		b := db.Begin()
		tag := b.AddNode()
		leaf := b.AddNode()
		must(t, b.AddEdge(entry, ssd.Sym("Tag"), tag))
		must(t, b.AddEdge(tag, ssd.Str("tag-value"), leaf))
		must(t, db.Apply(b))
	}
	close(stop)
	wg.Wait()

	if hits := db.FindString("tag-value"); len(hits) != commits {
		t.Fatalf("FindString = %d hits, want %d", len(hits), commits)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
