package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/ssd"
	"repro/internal/workload"
)

// TestStmtCacheLRU is the regression test for the random-eviction bug: a
// hot statement must survive any number of distinct cold statements
// passing through the bounded cache, because every touch moves it to the
// LRU front. Under the old map-iteration eviction it had a near-certain
// chance of being thrown out somewhere in 300 inserts.
func TestStmtCacheLRU(t *testing.T) {
	db := FromGraph(workload.Fig1(false))
	const hot = `select T from DB.Entry.Movie.Title T`
	s0, err := db.PrepareCached(hot)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		cold := fmt.Sprintf(`select T from DB.Entry.Movie.Title T where T != "cold-%d"`, i)
		if _, err := db.PrepareCached(cold); err != nil {
			t.Fatal(err)
		}
		// The hot statement is touched between cold inserts, as a real
		// workload would.
		s, err := db.PrepareCached(hot)
		if err != nil {
			t.Fatal(err)
		}
		if s != s0 {
			t.Fatalf("hot statement evicted after %d cold inserts", i+1)
		}
	}
	// The cache stayed bounded.
	db.stmtMu.Lock()
	n, l := len(db.stmts), db.stmtLRU.Len()
	db.stmtMu.Unlock()
	if n > stmtCacheMax || n != l {
		t.Fatalf("cache size %d (lru %d), want <= %d and equal", n, l, stmtCacheMax)
	}
}

// TestStmtQueryParallelMatchesSerial: with a per-db parallelism default
// set, Stmt.Query must stream exactly the rows the serial engine streams,
// in the same order, while drawing all worker plans from the pool.
func TestStmtQueryParallelMatchesSerial(t *testing.T) {
	g := workload.Movies(workload.DefaultMovieConfig(300))
	const src = `select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = $who`

	serialDB := FromGraph(g)
	parDB := FromGraph(g)
	parDB.SetParallelism(4)
	if got := parDB.Parallelism(); got != 4 {
		t.Fatalf("Parallelism() = %d", got)
	}

	collect := func(db *Database) []string {
		t.Helper()
		s, err := db.Prepare(src)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		// Two rounds so the second draws the whole plan set from the pool.
		for round := 0; round < 2; round++ {
			out = out[:0]
			rows, err := s.Query(context.Background(), P("who", "Allen"))
			if err != nil {
				t.Fatal(err)
			}
			for rows.Next() {
				var m, tt, a string
				if err := rows.Scan(&m, &tt, &a); err != nil {
					t.Fatal(err)
				}
				out = append(out, m+"|"+tt+"|"+a)
			}
			if err := rows.Err(); err != nil {
				t.Fatal(err)
			}
			rows.Close()
		}
		return out
	}
	want := collect(serialDB)
	got := collect(parDB)
	if len(want) == 0 {
		t.Fatal("no rows in serial baseline")
	}
	if len(got) != len(want) {
		t.Fatalf("parallel rows = %d, serial = %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %q != %q", i, got[i], want[i])
		}
	}
}

// TestParallelRowsErrCancellation: Rows.Err inherits the cursor error fix
// through the parallel backend — a cancelled context is reported, never a
// clean exhaustion.
func TestParallelRowsErrCancellation(t *testing.T) {
	db := FromGraph(workload.Movies(workload.DefaultMovieConfig(2000)))
	db.SetParallelism(3)
	s, err := db.Prepare(`select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := s.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("no first row")
	}
	cancel()
	for rows.Next() {
	}
	if rows.Err() != context.Canceled {
		t.Fatalf("Rows.Err = %v, want context.Canceled", rows.Err())
	}
	// Err after Close still reports it, even though Close returned the
	// plans (and their executors) to the pool for reuse.
	rows.Close()
	if rows.Err() != context.Canceled {
		t.Fatalf("Rows.Err after Close = %v, want context.Canceled", rows.Err())
	}
}

// TestConcurrentParallelStmtQueryDuringCommits is the -race stress for the
// pooled parallel path: several goroutines run one shared statement with
// parallelism on while a writer publishes commits. Every execution must
// see one consistent snapshot.
func TestConcurrentParallelStmtQueryDuringCommits(t *testing.T) {
	db := FromGraph(workload.Fig1(false))
	db.SetParallelism(3)
	s, err := db.Prepare(`select T from DB.Entry.Movie M, M.Title T`)
	if err != nil {
		t.Fatal(err)
	}
	const (
		readers = 6
		rounds  = 15
		commits = 10
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers*rounds+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < commits; i++ {
			g := db.Graph()
			entry := g.LookupFirst(g.Root(), ssd.Sym("Entry"))
			movie := g.LookupFirst(entry, ssd.Sym("Movie"))
			b := db.Begin()
			titleNode := b.AddNode()
			leaf := b.AddNode()
			if err := b.AddEdge(movie, ssd.Sym("Title"), titleNode); err != nil {
				errs <- err
				return
			}
			if err := b.AddEdge(titleNode, ssd.Str(fmt.Sprintf("Sequel %d", i)), leaf); err != nil {
				errs <- err
				return
			}
			if err := db.Apply(b); err != nil {
				errs <- err
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				rows, err := s.Query(context.Background())
				if err != nil {
					errs <- err
					return
				}
				n := 0
				for rows.Next() {
					n++
				}
				err = rows.Err()
				rows.Close()
				if err != nil {
					errs <- err
					return
				}
				if n < 2 || n > 2+commits {
					errs <- fmt.Errorf("inconsistent snapshot: %d titles", n)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
