// Package core is the public face of the library: a Database handle over
// one semistructured graph, exposing the paper's capabilities behind a
// small API —
//
//   - loading/saving (text syntax and binary files) and OEM-style exchange
//     via the relational codecs (§1.2),
//   - the select-from-where query language with path expressions (§3),
//   - graph datalog (§3),
//   - structural-recursion restructuring (§3),
//   - the §1.3 browsing queries backed by value indexes,
//   - DataGuides, graph schemas, conformance and schema inference (§5),
//   - value equality by bisimulation (§2),
//   - versioned updates through the internal/mutate write path: batched
//     mutations, an optional write-ahead log, and MVCC snapshots.
//
// A Database is a multi-version handle: readers always see one immutable
// published snapshot (graph plus its lazily built indexes and DataGuide),
// while Begin/Apply/Commit install new snapshots atomically under a
// single-writer lock. The legacy wholesale transformations (Transform,
// RelabelWhere, …) still return fresh handles with fresh caches, so no
// entry point can ever serve derived structures computed for a different
// graph version.
package core

import (
	"container/list"
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bisim"
	"repro/internal/dataguide"
	"repro/internal/datalog"
	"repro/internal/index"
	"repro/internal/mutate"
	"repro/internal/oem"
	"repro/internal/pathexpr"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/schema"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/unql"
)

// Database is a handle over one semistructured graph. Handles are safe for
// concurrent use: every read method runs against the immutable snapshot
// published at its start, and writers swap in whole new snapshots — a query
// never sees a half-applied batch, and cached auxiliary structures can
// never outlive the graph version they were built from.
type Database struct {
	snap    atomic.Pointer[snapshot]
	writeMu sync.Mutex // serializes Begin-to-Commit writers and WAL state
	wal     *mutate.WAL

	// Statement cache: the legacy one-shot methods and the serving layer
	// route through PrepareCached, and this keeps their repeat executions
	// on the prepare-once path. Entries hold parsed ASTs and per-snapshot
	// plan pools; a commit does not evict them — each Stmt re-plans lazily
	// when it notices the snapshot changed. Eviction is LRU (stmtLRU front
	// = most recently used), so a hot query survives any number of
	// distinct cold ones passing through.
	stmtMu  sync.Mutex
	stmts   map[string]*list.Element // value: *stmtEntry
	stmtLRU list.List

	// parallelism is the default worker count Stmt.Query fans queries out
	// to (see SetParallelism). 0 or 1 = serial.
	parallelism atomic.Int32

	// walRO mirrors wal for lock-free readers (WALSize): monitoring must
	// not queue behind a writer holding writeMu through a log truncation.
	walRO atomic.Pointer[mutate.WAL]

	// Durable-directory state (see durable.go). dir is empty unless the
	// database was opened with OpenPath; snapSeq is the newest snapshot
	// generation on disk and recovery describes what open recovered.
	// dirLock holds the directory's advisory file lock for the life of the
	// handle. ckptMu serializes whole checkpoints against each other
	// without blocking the writer: only the brief pin and the log
	// truncation take writeMu.
	dir      string
	snapSeq  atomic.Uint64 // atomic: health endpoints read it mid-checkpoint
	recovery RecoveryInfo
	dirLock  *os.File
	ckptMu   sync.Mutex

	// Replication position (see repl.go). replSeq counts batches committed
	// since the durable directory's birth (or since handle creation for
	// non-durable databases); checkpoints persist it and recovery restores
	// it, so it is comparable across restarts and across the replicas that
	// boot from this database's snapshots. seqCh is the broadcast channel
	// commit closes so read-your-writes waiters and replication streams
	// wake promptly; seqMu guards its swap.
	replSeq atomic.Uint64
	seqMu   sync.Mutex
	seqCh   chan struct{}

	// Out-of-core mode (OpenPathOptions with PoolBytes > 0). poolBytes is the
	// buffer-pool budget every opened page store gets; pageStores tracks every
	// store opened over the handle's life (guarded by writeMu) so CloseWAL can
	// release their file handles — superseded stores stay open until then
	// because in-flight Rows may still read through them.
	poolBytes  int64
	pageStores []*storage.PageStore
}

// stmtCacheMax bounds the statement cache.
const stmtCacheMax = 256

// stmtEntry is one LRU cache slot.
type stmtEntry struct {
	src string
	s   *Stmt
}

// PrepareCached returns a shared prepared statement for src, preparing and
// caching it on first use in the database's bounded LRU statement cache.
// It is the entry point for serving layers (ssdserve keys its request
// statements by query text through it) and for the legacy one-shot
// wrappers. Shared Stmts are safe for concurrent use; unlike Prepare, the
// returned statement may be shared with other callers.
func (db *Database) PrepareCached(src string) (*Stmt, error) { return db.prepared(src) }

// prepared implements PrepareCached. The parse/plan happens outside the
// cache lock; when two goroutines race to prepare the same text, the first
// insert wins and the loser adopts it, so the cache never holds two Stmts
// for one key.
func (db *Database) prepared(src string) (*Stmt, error) {
	db.stmtMu.Lock()
	if e, ok := db.stmts[src]; ok {
		db.stmtLRU.MoveToFront(e)
		s := e.Value.(*stmtEntry).s
		db.stmtMu.Unlock()
		obsStmtHits.Inc()
		return s, nil
	}
	db.stmtMu.Unlock()
	obsStmtMisses.Inc()
	s, err := db.Prepare(src)
	if err != nil {
		return nil, err
	}
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	if e, ok := db.stmts[src]; ok { // lost the race: adopt the winner
		db.stmtLRU.MoveToFront(e)
		return e.Value.(*stmtEntry).s, nil
	}
	if db.stmts == nil {
		db.stmts = make(map[string]*list.Element, stmtCacheMax)
	}
	for len(db.stmts) >= stmtCacheMax {
		oldest := db.stmtLRU.Back()
		db.stmtLRU.Remove(oldest)
		delete(db.stmts, oldest.Value.(*stmtEntry).src)
		obsStmtEvictions.Inc()
	}
	db.stmts[src] = db.stmtLRU.PushFront(&stmtEntry{src: src, s: s})
	return s, nil
}

// StmtCacheLen returns the number of statements currently held by the LRU
// statement cache — the /healthz "stmt_cache_size" figure.
func (db *Database) StmtCacheLen() int {
	db.stmtMu.Lock()
	n := len(db.stmts)
	db.stmtMu.Unlock()
	return n
}

// invalidateStmtPlans drops every cached statement's pooled plans after a
// snapshot swap, releasing the old graph version promptly. In-flight Rows
// keep their checked-out plan and pinned snapshot until Close, by design.
func (db *Database) invalidateStmtPlans() {
	db.stmtMu.Lock()
	for _, e := range db.stmts {
		e.Value.(*stmtEntry).s.invalidate()
	}
	db.stmtMu.Unlock()
}

// SetParallelism sets the default intra-query parallelism for Stmt.Query:
// the number of worker executors the morsel-driven parallel scan fans a
// query out to. n <= 1 (the default) runs queries serially. Results are
// byte-identical either way; the statement layer draws the extra compiled
// plans from its per-statement pool. Safe to call concurrently with
// queries; executions in flight keep the setting they started with.
func (db *Database) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	db.parallelism.Store(int32(n))
}

// Parallelism reports the database's default intra-query parallelism.
func (db *Database) Parallelism() int { return int(db.parallelism.Load()) }

// snapshot is one immutable graph version with its lazily built derived
// structures. The graph never changes after the snapshot is published; the
// mutex guards only the lazy builds.
type snapshot struct {
	g *ssd.Graph

	// paged, when non-nil, is the out-of-core page store this snapshot's
	// read paths go through instead of g. It is bound at snapshot
	// construction only (OpenPath recovery, or the post-checkpoint republish)
	// and never mutated afterwards — a snapshot is either page-backed for its
	// whole life or not at all, so plan pools keyed by snapshot pointer can
	// never mix stores. Snapshots published by commits start un-paged (the
	// page image on disk describes the previous generation) and fall back to
	// g until the next checkpoint cuts a matching page file. Result
	// materialization (select instantiation, transforms) always uses g: the
	// in-memory graph is retained alongside the page store in this design —
	// the pool bounds hot-path working memory, not total residency.
	paged *storage.PageStore

	mu      sync.Mutex
	labelIx *index.LabelIndex
	valueIx *index.ValueIndex
	guide   *dataguide.Guide
	stats   *stats.Stats
}

// store returns the snapshot's read store: the paged store when this
// generation is page-backed, the in-memory graph otherwise. Query planning,
// traversal, index builds and datalog EDB extraction all go through it.
func (s *snapshot) store() ssd.GraphStore {
	if s.paged != nil {
		return s.paged
	}
	return s.g
}

// FromGraph wraps an existing graph. The graph must not be mutated directly
// afterwards; use Begin/Apply/Commit.
func FromGraph(g *ssd.Graph) *Database {
	db := &Database{}
	db.snap.Store(&snapshot{g: g})
	return db
}

// snapshot returns the current published snapshot. Callers use one snapshot
// for a whole operation; later commits do not affect it.
func (db *Database) snapshot() *snapshot { return db.snap.Load() }

// ParseText loads a database from the text syntax.
func ParseText(src string) (*Database, error) {
	g, err := ssd.Parse(src)
	if err != nil {
		return nil, err
	}
	return FromGraph(g), nil
}

// Open reads a database from a binary file written by Save.
func Open(path string) (*Database, error) {
	g, err := storage.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return FromGraph(g), nil
}

// Save writes the database to a binary file.
func (db *Database) Save(path string) error { return storage.WriteFile(path, db.snapshot().g) }

// Graph exposes the underlying graph of the current snapshot (read-only by
// convention).
func (db *Database) Graph() *ssd.Graph { return db.snapshot().g }

// Format renders the database in the text syntax.
func (db *Database) Format() string { return ssd.FormatRoot(db.snapshot().g) }

// Stats summarizes the graph.
func (db *Database) Stats() ssd.Stats { return db.snapshot().g.ComputeStats() }

// ---------------------------------------------------------------------------
// Mutation: the write path (internal/mutate)

// Begin starts a mutation batch against the current snapshot. Build it up
// with the Batch methods, then hand it to Apply or Commit. Batches from
// other handles (or from before an intervening commit) that allocate nodes
// are rejected at apply time.
func (db *Database) Begin() *mutate.Batch { return mutate.NewBatch(db.snapshot().g) }

// Apply applies a batch and publishes the resulting snapshot without
// logging it. With a WAL open, prefer Commit: an applied-but-unlogged batch
// will be missing from a later replay.
func (db *Database) Apply(b *mutate.Batch) error { return db.commit(b, false) }

// Commit logs the batch to the open WAL (if any) and then applies it. The
// batch is durable once Commit returns. Readers keep querying the previous
// snapshot until the new one is published atomically; they never observe a
// half-applied batch.
func (db *Database) Commit(b *mutate.Batch) error { return db.commit(b, true) }

// MutateScript parses src in the ssdq mutation script format (see
// mutate.ParseScript) against the current snapshot and commits it as one
// batch, logging to the WAL if one is open. The writer lock is held across
// parse and commit, so the script's node references can never be
// invalidated by an interleaving writer.
//
//ssd:locks writeMu
func (db *Database) MutateScript(src string) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	b, err := mutate.ParseScript(src, db.snapshot().g)
	if err != nil {
		return err
	}
	return db.commitLocked(b, true)
}

//ssd:locks writeMu
func (db *Database) commit(b *mutate.Batch, logIt bool) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	return db.commitLocked(b, logIt)
}

// commitLocked applies, logs, and publishes one batch. The caller holds
// writeMu: the WAL append and the snapshot swap must not interleave with
// another writer.
//
//ssd:requires writeMu
func (db *Database) commitLocked(b *mutate.Batch, logIt bool) error {
	start := time.Now()
	if db.dir != "" && db.wal == nil {
		// A directory-backed database without its log is closed: accepting
		// the commit would publish a state no generation or log holds, and
		// the next OpenPath would silently drop it.
		return fmt.Errorf("core: database is closed")
	}
	old := db.snapshot()
	g2, res, err := mutate.ApplyCOW(old.g, b)
	if err != nil {
		return err
	}
	// Log before publishing: a crash after Append replays to a superset of
	// what readers saw, never a subset.
	if logIt && db.wal != nil {
		if err := db.wal.Append(b); err != nil {
			return err
		}
	}
	ns := &snapshot{g: g2}
	// Incremental maintenance: derive the new snapshot's structures from
	// whatever the old one had already built. Structures it never built
	// stay nil and are rebuilt lazily on first use.
	old.mu.Lock()
	labelIx, valueIx, guide, st := old.labelIx, old.valueIx, old.guide, old.stats
	old.mu.Unlock()
	if labelIx != nil {
		ns.labelIx = labelIx.Apply(res.Delta)
	}
	if valueIx != nil {
		ns.valueIx = valueIx.Apply(res.Delta)
	}
	if st != nil {
		ns.stats = st.Apply(res.Delta)
	}
	if guide != nil && !res.RootChanged {
		// Deletes touching the accessible region fall back to a lazy rebuild.
		if ng, ok := guide.ApplyDelta(g2, res.Delta, 0); ok {
			ns.guide = ng
		}
	}
	db.snap.Store(ns)
	db.invalidateStmtPlans()
	if logIt || db.wal == nil {
		// The replication sequence counts exactly the batches a follower can
		// obtain: logged commits. An unlogged Apply on a WAL-backed database
		// is invisible to the log, so advancing the sequence for it would
		// break the seq↔frame correspondence replication cursors rely on.
		db.advanceSeq(1)
	}
	obsCommitDur.Observe(time.Since(start))
	obsCommits.Inc()
	return nil
}

// OpenWAL attaches the write-ahead log at path (creating it if absent).
// The log is bound to the current snapshot by fingerprint: batches already
// in it are replayed — so Open(base) followed by OpenWAL(log) reconstructs
// exactly the state whose commits the log records — while a log recorded
// against a different snapshot (e.g. left behind by a compaction that
// crashed after renaming the new snapshot in) is set aside as <path>.stale
// and a fresh log is started. Subsequent Commits append to the log.
//
//ssd:locks writeMu
func (db *Database) OpenWAL(path string) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.dir != "" {
		return fmt.Errorf("core: database is directory-backed; its log lives in %s", db.dir)
	}
	if db.wal != nil {
		return fmt.Errorf("core: WAL already open")
	}
	w, err := mutate.OpenWAL(path, mutate.Fingerprint(db.snapshot().g))
	if err != nil {
		return err
	}
	if w.Batches() > 0 {
		// Replay against a private clone, then publish once.
		g := db.snapshot().g.Clone()
		if err := w.Replay(func(b *mutate.Batch) error {
			_, err := mutate.ApplyInPlace(g, b)
			return err
		}); err != nil {
			w.Close()
			return err
		}
		db.snap.Store(&snapshot{g: g})
		db.invalidateStmtPlans()
	}
	db.wal = w
	db.walRO.Store(w)
	return nil
}

// CompactWAL rewrites the snapshot file at path from the current graph and
// truncates the open WAL: snapshot + empty log replays to the same state as
// the old snapshot + full log. On a durable database (OpenPath) use
// Checkpoint instead — it owns the directory's generation bookkeeping.
//
//ssd:locks writeMu
func (db *Database) CompactWAL(path string) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.dir != "" {
		return fmt.Errorf("core: database is directory-backed; use Checkpoint")
	}
	if db.wal == nil {
		return fmt.Errorf("core: no WAL open")
	}
	return db.wal.Compact(path, db.snapshot().g)
}

// CloseWAL detaches and closes the write-ahead log, if one is open. On a
// directory-backed database this is the close operation: it also releases
// the directory lock, letting another process OpenPath it.
//
//ssd:locks writeMu
func (db *Database) CloseWAL() error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.dirLock != nil {
		db.dirLock.Close() // releases the advisory lock
		db.dirLock = nil
	}
	for _, ps := range db.pageStores {
		ps.Close()
	}
	db.pageStores = nil
	if db.wal == nil {
		return nil
	}
	err := db.wal.Close()
	db.wal = nil
	db.walRO.Store(nil)
	return err
}

// PagePoolStats returns the buffer-pool counters of the current snapshot's
// page store: hits, misses, evictions, resident and pinned bytes. ok=false
// when the current snapshot is not page-backed (in-memory database, paging
// disabled, or a post-commit snapshot awaiting its next checkpoint).
func (db *Database) PagePoolStats() (storage.PoolStats, bool) {
	if ps := db.snapshot().paged; ps != nil {
		return ps.Stats(), true
	}
	return storage.PoolStats{}, false
}

// ---------------------------------------------------------------------------
// Queries
//
// The one-shot methods below predate the statement lifecycle and are kept
// as thin wrappers: each routes through the statement cache, so repeated
// calls with the same text hit the prepare-once path automatically.

// Query runs a select-from-where query and returns the result database.
// Evaluation uses the planned iterator engine, feeding the planner whatever
// auxiliary structures the database has already built (the label index is
// built on first query; a DataGuide is used only if previously built, since
// guide construction can be exponential on irregular data).
//
// Deprecated: use Prepare and Stmt.Exec, which add parameter binding and
// context cancellation. This wrapper remains for convenience.
func (db *Database) Query(src string) (*Database, error) {
	s, err := db.prepared(src)
	if err != nil {
		return nil, err
	}
	// This wrapper is documented as select-from-where; without the guard a
	// mistyped text that sniffs as a transform would silently execute it.
	if s.lang != LangQuery {
		return nil, fmt.Errorf("core: %q is a %s statement, not a query; use Prepare", src, s.lang)
	}
	return s.Exec(context.Background())
}

// QueryEngine runs a query with an explicit engine choice — the ablation
// hook behind ssdq's -engine flag. Parameterized queries need values; use
// QueryEngineArgs.
//
// Deprecated: use Prepare and Stmt.Exec (EnginePlanned is the only engine
// statements execute; the naive engine exists for cross-checking).
func (db *Database) QueryEngine(src string, engine query.Engine) (*Database, error) {
	return db.QueryEngineArgs(src, engine)
}

// QueryEngineArgs is QueryEngine with parameter values — the hook behind
// ssdq's -engine and -param flags. Both engines see identical parameter
// semantics: the planned engine binds values into plan slots, the naive
// engine substitutes them into the AST.
func (db *Database) QueryEngineArgs(src string, engine query.Engine, args ...Param) (*Database, error) {
	s, err := db.prepared(src)
	if err != nil {
		return nil, err
	}
	if s.lang != LangQuery {
		return nil, fmt.Errorf("core: %q is a %s statement, not a query", src, s.lang)
	}
	if engine != query.EngineNaive {
		return s.Exec(context.Background(), args...)
	}
	vals, err := s.bindArgs(args)
	if err != nil {
		return nil, err
	}
	// The naive engine ignores PlanOptions; don't build indexes for it —
	// that would skew the very baseline the ablation flag exists for.
	snap := db.snapshot()
	res, err := query.EvalOpts(s.q, snap.g, query.Options{
		Minimize: true, Engine: query.EngineNaive, Params: vals,
	})
	if err != nil {
		return nil, err
	}
	return FromGraph(res), nil
}

// Explain parses and plans a statement without running it, returning the
// planner's human-readable plan: atom order, access paths, estimates.
func (db *Database) Explain(src string) (string, error) {
	s, err := db.prepared(src)
	if err != nil {
		return "", err
	}
	return s.Explain()
}

// ExplainAnalyze plans a query statement, runs it serially to exhaustion,
// and returns the plan annotated with estimated and actual per-atom row
// counts. See Stmt.ExplainAnalyze.
func (db *Database) ExplainAnalyze(ctx context.Context, src string) (string, error) {
	s, err := db.prepared(src)
	if err != nil {
		return "", err
	}
	return s.ExplainAnalyze(ctx)
}

// planOptions assembles the planner inputs from one snapshot, so the plan's
// cached structures always describe the same graph version it will run on.
func (s *snapshot) planOptions() query.PlanOptions {
	label := s.labels()
	st := s.statistics()
	s.mu.Lock()
	guide := s.guide // nil unless already built; never forced
	s.mu.Unlock()
	return query.PlanOptions{Label: label, Guide: guide, Stats: st}
}

// statistics returns the snapshot's cardinality statistics, building them on
// first use. Commits maintain an already-built Stats incrementally (see
// commitLocked), and durable recovery restores them from the snapshot file's
// stats section, so in steady state this never rescans the graph.
func (s *snapshot) statistics() *stats.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stats == nil {
		s.stats = stats.Build(s.g)
	}
	return s.stats
}

// QueryRows runs the from/where part of a query and returns the binding
// tuples — programmatic access without building a result tree. It wraps
// the streaming Rows cursor, copying each row once into an independent
// Env (the cursor itself reuses one Env across rows; this wrapper exists
// for callers who want the materialized slice). Path-variable label
// slices inside the returned Envs are shared with the engine and must be
// treated as read-only.
//
// Deprecated: use Prepare and Stmt.Query to stream rows without
// materializing the whole set.
func (db *Database) QueryRows(src string) ([]query.Env, error) {
	s, err := db.prepared(src)
	if err != nil {
		return nil, err
	}
	if s.lang != LangQuery {
		return nil, fmt.Errorf("core: %q is a %s statement, not a query", src, s.lang)
	}
	rows, err := s.Query(context.Background())
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []query.Env
	for rows.Next() {
		out = append(out, rows.envFresh())
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// PathQuery evaluates a regular path expression from the root and returns
// the matching nodes, sorted.
//
// Deprecated: use Prepare with a `path:` statement and Stmt.Query to
// stream matches instead of materializing them.
func (db *Database) PathQuery(src string) ([]ssd.NodeID, error) {
	s, err := db.prepared("path: " + src)
	if err != nil {
		return nil, err
	}
	rows, err := s.Query(context.Background())
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []ssd.NodeID
	for rows.Next() {
		var n ssd.NodeID
		if err := rows.Scan(&n); err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// PathQueryIndexed evaluates a path expression through the DataGuide path
// index (building the guide on first use). Results equal PathQuery.
func (db *Database) PathQueryIndexed(src string) ([]ssd.NodeID, error) {
	au, err := compilePath(src)
	if err != nil {
		return nil, err
	}
	return db.DataGuide().Eval(au), nil
}

func compilePath(src string) (*pathexpr.Automaton, error) {
	e, err := pathexpr.Parse(src)
	if err != nil {
		return nil, err
	}
	// An unbound $parameter would compile to a match-nothing predicate —
	// a silent empty result. Only the statement layer can bind values.
	if ps := pathexpr.Params(e); len(ps) > 0 {
		return nil, fmt.Errorf("core: path has parameters ($%s); use Prepare and bind them", ps[0])
	}
	return pathexpr.Compile(e), nil
}

// Datalog runs a datalog program (semi-naive) and returns its IDB
// relations. The parse is cached via the statement layer.
//
// Deprecated: use Prepare with a `datalog:` statement and Stmt.Query to
// iterate the tuples.
func (db *Database) Datalog(src string) (map[string]*datalog.Relation, error) {
	s, err := db.prepared("datalog: " + src)
	if err != nil {
		return nil, err
	}
	if s.lang != LangDatalog {
		return nil, fmt.Errorf("core: %q is a %s statement, not datalog", src, s.lang)
	}
	return datalog.NewEngine(db.snapshot().store()).Run(s.dl, datalog.SemiNaive)
}

// ---------------------------------------------------------------------------
// Browsing (§1.3): the three questions a user can ask without a schema.

// FindString returns the locations of a string anywhere in the database —
// "Where in the database is the string "Casablanca" to be found?"
func (db *Database) FindString(s string) []index.EdgeRef {
	return db.snapshot().values().Exact(ssd.Str(s))
}

// IntsGreaterThan returns locations of integers above v — "Are there
// integers in the database greater than 2^16?"
func (db *Database) IntsGreaterThan(v int64) []index.EdgeRef {
	return db.snapshot().values().Compare(pathexpr.OpGT, ssd.Int(v))
}

// AttrsLike returns the distinct attribute (symbol) labels matching a
// %-pattern — "What objects have an attribute name that starts with act?"
func (db *Database) AttrsLike(pattern string) []ssd.Label {
	pred := pathexpr.LikePred{Pattern: pattern}
	var out []ssd.Label
	for _, l := range db.snapshot().labels().Labels() {
		if l.IsSymbol() && pred.Match(l) {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Browse lists label paths from the root with extent sizes, DataGuide-
// style — browsing without a schema (§1.3, §5).
func (db *Database) Browse(maxDepth, limit int) []dataguide.Annotation {
	return db.DataGuide().Summary(maxDepth, limit)
}

func (s *snapshot) labels() *index.LabelIndex {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.labelIx == nil {
		s.labelIx = index.BuildLabelIndex(s.g)
	}
	return s.labelIx
}

func (s *snapshot) values() *index.ValueIndex {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.valueIx == nil {
		s.valueIx = index.BuildValueIndex(s.g)
	}
	return s.valueIx
}

// ---------------------------------------------------------------------------
// Structure (§5)

// DataGuide returns the strong DataGuide of the current snapshot, building
// it on first use. Commits extend an already-built guide incrementally.
func (db *Database) DataGuide() *dataguide.Guide {
	s := db.snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.guide == nil {
		s.guide = dataguide.MustBuild(s.g)
	}
	return s.guide
}

// InferSchema extracts a schema the database conforms to.
func (db *Database) InferSchema() *schema.Schema { return schema.Infer(db.snapshot().g) }

// Conforms checks conformance to a schema by simulation.
func (db *Database) Conforms(s *schema.Schema) bool { return s.Conforms(db.snapshot().g) }

// ---------------------------------------------------------------------------
// Restructuring (§3)
//
// The wholesale transformations predate the mutation subsystem. Each clones
// the world and returns a NEW handle whose caches start empty, so stale
// derived structures are impossible — but nothing is logged: a WAL open on
// the receiver does not describe the returned database.

// Transform applies a structural-recursion rewriter and returns the new
// database.
func (db *Database) Transform(f unql.Rewriter) *Database {
	return FromGraph(unql.GExt(db.snapshot().g, f))
}

// RelabelWhere renames matching edge labels.
func (db *Database) RelabelWhere(pred pathexpr.Pred, to ssd.Label) *Database {
	return FromGraph(unql.RelabelWhere(db.snapshot().g, pred, to))
}

// DeleteEdges removes matching edges.
func (db *Database) DeleteEdges(pred pathexpr.Pred) *Database {
	return FromGraph(unql.DeleteEdges(db.snapshot().g, pred))
}

// CollapseEdges short-circuits matching edges.
func (db *Database) CollapseEdges(pred pathexpr.Pred) *Database {
	return FromGraph(unql.CollapseEdges(db.snapshot().g, pred))
}

// ---------------------------------------------------------------------------
// Exchange (§1.2) and equality (§2)

// ImportRelational encodes a relational database.
func ImportRelational(rdb relstore.Database) *Database {
	return FromGraph(relstore.EncodeRelational(rdb))
}

// ExportRelational decodes the database back into tables; it errors when
// the data is not relationally shaped (§5's structured/semistructured
// boundary).
func (db *Database) ExportRelational() (relstore.Database, error) {
	return relstore.DecodeRelational(db.snapshot().g)
}

// Equal reports value equality (bisimulation, ignoring object identity).
func (db *Database) Equal(other *Database) bool {
	return bisim.Equal(db.snapshot().g, other.snapshot().g)
}

// Minimize returns the canonical bisimulation quotient.
func (db *Database) Minimize() *Database { return FromGraph(bisim.Minimize(db.snapshot().g)) }

// Describe returns a one-line summary for CLI output.
func (db *Database) Describe() string {
	s := db.Stats()
	return fmt.Sprintf("%d nodes, %d edges, %d distinct labels, %d leaves",
		s.Nodes, s.Edges, s.DistinctLabel, s.Leaves)
}

// ---------------------------------------------------------------------------
// OEM exchange (§1.2, [33])

// ParseOEM loads a database from the Tsimmis OEM wire format.
func ParseOEM(src string) (*Database, error) {
	d, err := oem.Parse(src)
	if err != nil {
		return nil, err
	}
	return FromGraph(oem.ToGraph(d)), nil
}

// FormatOEM renders the database in the OEM wire format (see the oem
// package for the conversion's fidelity notes).
func (db *Database) FormatOEM() string {
	return oem.FromGraph(db.snapshot().g).Format()
}
