// Package core is the public face of the library: a Database handle over
// one semistructured graph, exposing the paper's capabilities behind a
// small API —
//
//   - loading/saving (text syntax and binary files) and OEM-style exchange
//     via the relational codecs (§1.2),
//   - the select-from-where query language with path expressions (§3),
//   - graph datalog (§3),
//   - structural-recursion restructuring (§3),
//   - the §1.3 browsing queries backed by value indexes,
//   - DataGuides, graph schemas, conformance and schema inference (§5),
//   - value equality by bisimulation (§2).
//
// A Database is immutable: transformations return new handles, so indexes
// and DataGuides are computed once, lazily, and never invalidated.
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bisim"
	"repro/internal/dataguide"
	"repro/internal/datalog"
	"repro/internal/index"
	"repro/internal/oem"
	"repro/internal/pathexpr"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/schema"
	"repro/internal/ssd"
	"repro/internal/storage"
	"repro/internal/unql"
)

// Database is an immutable handle over one semistructured graph. Handles
// are safe for concurrent use: the lazily built auxiliary structures are
// guarded, and queries never mutate the graph.
type Database struct {
	g *ssd.Graph

	mu      sync.Mutex // guards the lazy builds below
	labelIx *index.LabelIndex
	valueIx *index.ValueIndex
	guide   *dataguide.Guide
}

// FromGraph wraps an existing graph. The graph must not be mutated
// afterwards.
func FromGraph(g *ssd.Graph) *Database { return &Database{g: g} }

// ParseText loads a database from the text syntax.
func ParseText(src string) (*Database, error) {
	g, err := ssd.Parse(src)
	if err != nil {
		return nil, err
	}
	return FromGraph(g), nil
}

// Open reads a database from a binary file written by Save.
func Open(path string) (*Database, error) {
	g, err := storage.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return FromGraph(g), nil
}

// Save writes the database to a binary file.
func (db *Database) Save(path string) error { return storage.WriteFile(path, db.g) }

// Graph exposes the underlying graph (read-only by convention).
func (db *Database) Graph() *ssd.Graph { return db.g }

// Format renders the database in the text syntax.
func (db *Database) Format() string { return ssd.FormatRoot(db.g) }

// Stats summarizes the graph.
func (db *Database) Stats() ssd.Stats { return db.g.ComputeStats() }

// ---------------------------------------------------------------------------
// Queries

// Query runs a select-from-where query and returns the result database.
// Evaluation uses the planned iterator engine, feeding the planner whatever
// auxiliary structures the database has already built (the label index is
// built on first query; a DataGuide is used only if previously built, since
// guide construction can be exponential on irregular data).
func (db *Database) Query(src string) (*Database, error) {
	return db.QueryEngine(src, query.EnginePlanned)
}

// QueryEngine runs a query with an explicit engine choice — the ablation
// hook behind ssdq's -engine flag.
func (db *Database) QueryEngine(src string, engine query.Engine) (*Database, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	opts := query.Options{Minimize: true, Engine: engine}
	if engine != query.EngineNaive {
		// The naive engine ignores PlanOptions; don't build indexes for it —
		// that would skew the very baseline the ablation flag exists for.
		opts.Plan = db.planOptions()
	}
	res, err := query.EvalOpts(q, db.g, opts)
	if err != nil {
		return nil, err
	}
	return FromGraph(res), nil
}

// Explain parses and plans a query without running it, returning the
// planner's human-readable plan: atom order, access paths, estimates.
func (db *Database) Explain(src string) (string, error) {
	q, err := query.Parse(src)
	if err != nil {
		return "", err
	}
	p, err := query.NewPlan(q, db.g, db.planOptions())
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

func (db *Database) planOptions() query.PlanOptions {
	label := db.labels()
	db.mu.Lock()
	guide := db.guide // nil unless already built; never forced
	db.mu.Unlock()
	return query.PlanOptions{Label: label, Guide: guide}
}

// QueryRows runs the from/where part of a query and returns the binding
// tuples — programmatic access without building a result tree.
func (db *Database) QueryRows(src string) ([]query.Env, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	return query.EvalRows(q, db.g, 0)
}

// PathQuery evaluates a regular path expression from the root and returns
// the matching nodes.
func (db *Database) PathQuery(src string) ([]ssd.NodeID, error) {
	au, err := compilePath(src)
	if err != nil {
		return nil, err
	}
	return au.Eval(db.g, db.g.Root()), nil
}

// PathQueryIndexed evaluates a path expression through the DataGuide path
// index (building the guide on first use). Results equal PathQuery.
func (db *Database) PathQueryIndexed(src string) ([]ssd.NodeID, error) {
	au, err := compilePath(src)
	if err != nil {
		return nil, err
	}
	return db.DataGuide().Eval(au), nil
}

func compilePath(src string) (*pathexpr.Automaton, error) {
	e, err := pathexpr.Parse(src)
	if err != nil {
		return nil, err
	}
	return pathexpr.Compile(e), nil
}

// Datalog runs a datalog program (semi-naive) and returns its IDB
// relations.
func (db *Database) Datalog(src string) (map[string]*datalog.Relation, error) {
	prog, err := datalog.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	return datalog.NewEngine(db.g).Run(prog, datalog.SemiNaive)
}

// ---------------------------------------------------------------------------
// Browsing (§1.3): the three questions a user can ask without a schema.

// FindString returns the locations of a string anywhere in the database —
// "Where in the database is the string "Casablanca" to be found?"
func (db *Database) FindString(s string) []index.EdgeRef {
	return db.values().Exact(ssd.Str(s))
}

// IntsGreaterThan returns locations of integers above v — "Are there
// integers in the database greater than 2^16?"
func (db *Database) IntsGreaterThan(v int64) []index.EdgeRef {
	return db.values().Compare(pathexpr.OpGT, ssd.Int(v))
}

// AttrsLike returns the distinct attribute (symbol) labels matching a
// %-pattern — "What objects have an attribute name that starts with act?"
func (db *Database) AttrsLike(pattern string) []ssd.Label {
	pred := pathexpr.LikePred{Pattern: pattern}
	var out []ssd.Label
	for _, l := range db.labels().Labels() {
		if l.IsSymbol() && pred.Match(l) {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Browse lists label paths from the root with extent sizes, DataGuide-
// style — browsing without a schema (§1.3, §5).
func (db *Database) Browse(maxDepth, limit int) []dataguide.Annotation {
	return db.DataGuide().Summary(maxDepth, limit)
}

func (db *Database) labels() *index.LabelIndex {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.labelIx == nil {
		db.labelIx = index.BuildLabelIndex(db.g)
	}
	return db.labelIx
}

func (db *Database) values() *index.ValueIndex {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.valueIx == nil {
		db.valueIx = index.BuildValueIndex(db.g)
	}
	return db.valueIx
}

// ---------------------------------------------------------------------------
// Structure (§5)

// DataGuide returns the strong DataGuide, building it on first use.
func (db *Database) DataGuide() *dataguide.Guide {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.guide == nil {
		db.guide = dataguide.MustBuild(db.g)
	}
	return db.guide
}

// InferSchema extracts a schema the database conforms to.
func (db *Database) InferSchema() *schema.Schema { return schema.Infer(db.g) }

// Conforms checks conformance to a schema by simulation.
func (db *Database) Conforms(s *schema.Schema) bool { return s.Conforms(db.g) }

// ---------------------------------------------------------------------------
// Restructuring (§3)

// Transform applies a structural-recursion rewriter and returns the new
// database.
func (db *Database) Transform(f unql.Rewriter) *Database {
	return FromGraph(unql.GExt(db.g, f))
}

// RelabelWhere renames matching edge labels.
func (db *Database) RelabelWhere(pred pathexpr.Pred, to ssd.Label) *Database {
	return FromGraph(unql.RelabelWhere(db.g, pred, to))
}

// DeleteEdges removes matching edges.
func (db *Database) DeleteEdges(pred pathexpr.Pred) *Database {
	return FromGraph(unql.DeleteEdges(db.g, pred))
}

// CollapseEdges short-circuits matching edges.
func (db *Database) CollapseEdges(pred pathexpr.Pred) *Database {
	return FromGraph(unql.CollapseEdges(db.g, pred))
}

// ---------------------------------------------------------------------------
// Exchange (§1.2) and equality (§2)

// ImportRelational encodes a relational database.
func ImportRelational(rdb relstore.Database) *Database {
	return FromGraph(relstore.EncodeRelational(rdb))
}

// ExportRelational decodes the database back into tables; it errors when
// the data is not relationally shaped (§5's structured/semistructured
// boundary).
func (db *Database) ExportRelational() (relstore.Database, error) {
	return relstore.DecodeRelational(db.g)
}

// Equal reports value equality (bisimulation, ignoring object identity).
func (db *Database) Equal(other *Database) bool { return bisim.Equal(db.g, other.g) }

// Minimize returns the canonical bisimulation quotient.
func (db *Database) Minimize() *Database { return FromGraph(bisim.Minimize(db.g)) }

// Describe returns a one-line summary for CLI output.
func (db *Database) Describe() string {
	s := db.Stats()
	return fmt.Sprintf("%d nodes, %d edges, %d distinct labels, %d leaves",
		s.Nodes, s.Edges, s.DistinctLabel, s.Leaves)
}

// ---------------------------------------------------------------------------
// OEM exchange (§1.2, [33])

// ParseOEM loads a database from the Tsimmis OEM wire format.
func ParseOEM(src string) (*Database, error) {
	d, err := oem.Parse(src)
	if err != nil {
		return nil, err
	}
	return FromGraph(oem.ToGraph(d)), nil
}

// FormatOEM renders the database in the OEM wire format (see the oem
// package for the conversion's fidelity notes).
func (db *Database) FormatOEM() string {
	return oem.FromGraph(db.g).Format()
}
