package core

// This file is the statement lifecycle: the prepare-once / execute-many
// read path the one-shot Database methods now wrap. A Stmt is the product
// of parsing (and, lazily, planning) a source text exactly once; executing
// it binds $parameters into reserved plan slots and streams results
// through a Rows cursor that pulls straight from the Volcano executor.
//
// Plans are compiled per MVCC snapshot and pooled per statement: a commit
// swaps the snapshot pointer, which invalidates the pool wholesale, and
// the next execution re-plans lazily against the new snapshot — hot
// statements survive commits without ever serving a stale plan. Pooling
// (rather than sharing one plan) also makes concurrent executions safe:
// compiled automata carry mutable lazy-DFA caches, so each in-flight
// cursor owns its plan exclusively until Close returns it.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/datalog"
	"repro/internal/pathexpr"
	"repro/internal/query"
	"repro/internal/ssd"
	"repro/internal/storage"
	"repro/internal/unql"
)

// Lang identifies the front-end language of a prepared statement.
type Lang int

// The four prepare-able languages.
const (
	// LangQuery is the select-from-where language (internal/query).
	LangQuery Lang = iota
	// LangPath is a bare regular path expression evaluated from the root.
	LangPath
	// LangDatalog is a graph-datalog program.
	LangDatalog
	// LangTransform is the one-line UnQL restructuring command language:
	// `relabel <pred> to <label>`, `delete <pred>`, `collapse <pred>`,
	// `expand <pred> to l1.l2...`.
	LangTransform
)

func (l Lang) String() string {
	switch l {
	case LangPath:
		return "path"
	case LangDatalog:
		return "datalog"
	case LangTransform:
		return "transform"
	default:
		return "query"
	}
}

// SniffLang decides which language a statement text is written in and
// returns the text with any explicit prefix stripped. Explicit prefixes
// (`query:`, `path:`, `datalog:`, `unql:`) always win; otherwise a leading
// `select` keyword means query, a `:-` anywhere means datalog, a leading
// transform verb means transform, and anything else is a path expression.
// A path that genuinely starts with a symbol named like a transform verb
// needs the `path:` prefix.
func SniffLang(src string) (Lang, string) {
	trim := strings.TrimSpace(src)
	for _, p := range [...]struct {
		prefix string
		lang   Lang
	}{
		{"query:", LangQuery},
		{"path:", LangPath},
		{"datalog:", LangDatalog},
		{"unql:", LangTransform},
	} {
		if len(trim) >= len(p.prefix) && strings.EqualFold(trim[:len(p.prefix)], p.prefix) {
			return p.lang, strings.TrimSpace(trim[len(p.prefix):])
		}
	}
	first := trim
	if i := strings.IndexAny(trim, " \t\n\r"); i >= 0 {
		first = trim[:i]
	}
	switch {
	case strings.EqualFold(first, "select"):
		return LangQuery, trim
	case containsOutsideStrings(trim, ":-"):
		return LangDatalog, trim
	case transformVerbs[strings.ToLower(first)]:
		return LangTransform, trim
	default:
		return LangPath, trim
	}
}

// containsOutsideStrings reports whether sub occurs in s outside of
// double-quoted string literals (backslash escapes respected) — so a path
// expression matching an edge labeled `"x:-y"` does not sniff as datalog.
func containsOutsideStrings(s, sub string) bool {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inStr && c == '\\':
			i++
		case inStr && c == '"':
			inStr = false
		case inStr:
		case c == '"':
			inStr = true
		case strings.HasPrefix(s[i:], sub):
			return true
		}
	}
	return false
}

// Param binds a value to a named $parameter for one execution.
type Param struct {
	Name  string
	Value ssd.Label
}

// P builds a Param, converting common Go values to labels: string → string
// label, int/int64 → integer, float64 → float, bool → boolean; an
// ssd.Label passes through (use ssd.Sym for symbol labels). Unsupported
// types panic — a misuse caught at development time, like a bad fmt verb.
func P(name string, value any) Param {
	switch v := value.(type) {
	case ssd.Label:
		return Param{name, v}
	case string:
		return Param{name, ssd.Str(v)}
	case int:
		return Param{name, ssd.Int(int64(v))}
	case int64:
		return Param{name, ssd.Int(v)}
	case float64:
		return Param{name, ssd.Float(v)}
	case bool:
		return Param{name, ssd.Bool(v)}
	default:
		panic(fmt.Sprintf("core: P(%s): unsupported parameter type %T", name, value))
	}
}

// Stmt is a prepared statement: source text parsed once, plans compiled
// lazily per snapshot and pooled for reuse. A Stmt is safe for concurrent
// use; each execution checks a plan out of the pool (or compiles one) and
// Rows.Close returns it.
type Stmt struct {
	db       *Database
	src      string // prefix-stripped source
	lang     Lang
	params   []string        // declared $parameter names
	declared map[string]bool // the same names as a set, built once
	cols     []col           // result columns (query and path statements)

	q  *query.Query     // LangQuery
	pe pathexpr.Expr    // LangPath
	dl *datalog.Program // LangDatalog
	tr *transformStmt   // LangTransform

	mu       sync.Mutex
	snap     *snapshot             // snapshot the pooled plans were compiled for
	pool     []*query.Plan         // LangQuery: idle plans for snap
	pathPool []*pathexpr.Automaton // LangPath, param-free: idle automata
}

// maxPooledPlans bounds how many idle compiled plans a statement keeps.
// More concurrent executions than this simply re-plan on checkout. A
// parallel execution borrows 1+N plans at once (seeder plus workers), so
// the bound leaves room for a couple of concurrent parallel executions to
// recycle their whole sets.
const maxPooledPlans = 16

// colKind discriminates result columns.
type colKind int

const (
	colTree colKind = iota
	colLabel
	colPath
	colNode // path statements' single column
	colRel  // datalog: relation name
	colTup  // datalog: formatted tuple
)

type col struct {
	kind colKind
	slot int
	name string
}

// Prepare parses src once and returns a reusable statement. The language
// is sniffed (see SniffLang); $parameters become part of the statement's
// signature and must all be bound at each execution.
func (db *Database) Prepare(src string) (*Stmt, error) {
	lang, body := SniffLang(src)
	s := &Stmt{db: db, src: body, lang: lang}
	switch lang {
	case LangQuery:
		q, err := query.Parse(body)
		if err != nil {
			return nil, err
		}
		s.q = q
		s.params = q.Params
		for i, name := range treeVarNames(q) {
			s.cols = append(s.cols, col{kind: colTree, slot: i, name: name})
		}
		lv, pv := labelPathVarNames(q)
		for i, name := range lv {
			s.cols = append(s.cols, col{kind: colLabel, slot: i, name: "%" + name})
		}
		for i, name := range pv {
			s.cols = append(s.cols, col{kind: colPath, slot: i, name: "@" + name})
		}
	case LangPath:
		e, err := pathexpr.Parse(body)
		if err != nil {
			return nil, err
		}
		s.pe = e
		s.params = pathexpr.Params(e)
		s.cols = []col{{kind: colNode, name: "node"}}
	case LangDatalog:
		prog, err := datalog.ParseProgram(body)
		if err != nil {
			return nil, err
		}
		s.dl = prog
		s.cols = []col{{kind: colRel, name: "rel"}, {kind: colTup, name: "tuple"}}
	case LangTransform:
		tr, err := parseTransform(body)
		if err != nil {
			return nil, err
		}
		s.tr = tr
		s.params = tr.params
	}
	if len(s.params) > 0 {
		s.declared = make(map[string]bool, len(s.params))
		for _, n := range s.params {
			s.declared[n] = true
		}
	}
	return s, nil
}

// treeVarNames returns the from-clause variables in binding order — the
// planner assigns tree slots in exactly this order (the slot-assignment
// loop in query/plan.go is the peer of this walk; TestStmtRowsStreaming
// cross-checks Scan's slot reads against Env's name lookups).
func treeVarNames(q *query.Query) []string {
	names := make([]string, len(q.From))
	for i, b := range q.From {
		names[i] = b.Var
	}
	return names
}

// labelPathVarNames returns label and path variables in first-occurrence
// order over the from clause, mirroring the planner's slot assignment.
func labelPathVarNames(q *query.Query) (labels, paths []string) {
	seenL, seenP := map[string]bool{}, map[string]bool{}
	for _, b := range q.From {
		for _, st := range b.Path {
			switch t := st.(type) {
			case query.LabelVarStep:
				if !seenL[t.Name] {
					seenL[t.Name] = true
					labels = append(labels, t.Name)
				}
			case query.PathVarStep:
				if !seenP[t.Name] {
					seenP[t.Name] = true
					paths = append(paths, t.Name)
				}
			}
		}
	}
	return labels, paths
}

// Lang returns the statement's sniffed language.
func (s *Stmt) Lang() Lang { return s.lang }

// Source returns the prefix-stripped statement text.
func (s *Stmt) Source() string { return s.src }

// Params returns the statement's $parameter names in binding order.
func (s *Stmt) Params() []string { return s.params }

// Columns returns the result column names of Query-able statements: the
// query's variables (tree, then %label, then @path), a path statement's
// single "node", or datalog's "rel"/"tuple".
func (s *Stmt) Columns() []string {
	names := make([]string, len(s.cols))
	for i, c := range s.cols {
		names[i] = c.name
	}
	return names
}

// Explain describes how the statement would run against the current
// snapshot: the chosen plan for queries, a one-liner for the rest.
func (s *Stmt) Explain() (string, error) {
	switch s.lang {
	case LangQuery:
		snap := s.db.snapshot()
		p, err := query.NewPlan(s.q, snap.store(), snap.planOptions())
		if err != nil {
			return "", err
		}
		return p.Explain(), nil
	case LangPath:
		return fmt.Sprintf("path: traverse %s from root\n", s.pe), nil
	case LangDatalog:
		return fmt.Sprintf("datalog: %d rules, semi-naive\n", len(s.dl.Rules)), nil
	default:
		return fmt.Sprintf("transform: %s\n", s.tr.describe()), nil
	}
}

// ExplainAnalyze executes a query statement serially to exhaustion and
// returns its plan annotated with both the optimizer's estimated
// cardinality and the actual rows that survived each atom — the tool for
// judging whether the statistics are steering the planner well. Only query
// statements can be analyzed; args bind $parameters as in Query.
func (s *Stmt) ExplainAnalyze(ctx context.Context, args ...Param) (string, error) {
	if s.lang != LangQuery {
		return "", fmt.Errorf("core: explain analyze requires a query statement")
	}
	vals, err := s.bindArgs(args)
	if err != nil {
		return "", err
	}
	snap := s.db.snapshot()
	p, _, err := s.checkoutPlan(snap)
	if err != nil {
		return "", err
	}
	defer s.checkinPlan(snap, p)
	ps := snap.paged
	var before storage.PoolStats
	if ps != nil {
		before = ps.Stats()
	}
	out, err := p.ExplainAnalyze(ctx, vals)
	if err != nil || ps == nil {
		return out, err
	}
	after := ps.Stats()
	return out + fmt.Sprintf("page pool: %d hits, %d misses, %d evictions\n",
		after.Hits-before.Hits, after.Misses-before.Misses, after.Evictions-before.Evictions), nil
}

// bindArgs validates args against the statement's declared parameters and
// returns them as a map.
func (s *Stmt) bindArgs(args []Param) (map[string]ssd.Label, error) {
	if len(args) == 0 && len(s.params) == 0 {
		return nil, nil
	}
	vals := make(map[string]ssd.Label, len(args))
	for _, a := range args {
		if !s.declared[a.Name] {
			return nil, fmt.Errorf("core: statement has no parameter $%s", a.Name)
		}
		if _, dup := vals[a.Name]; dup {
			return nil, fmt.Errorf("core: parameter $%s bound twice", a.Name)
		}
		vals[a.Name] = a.Value
	}
	for _, n := range s.params {
		if _, ok := vals[n]; !ok {
			return nil, fmt.Errorf("core: parameter $%s not bound", n)
		}
	}
	return vals, nil
}

// checkoutPlan returns a compiled plan for the snapshot, reusing a pooled
// one when the snapshot still matches. A snapshot swap (commit) empties
// the pool: stale plans can never run against the new graph version.
// pooled reports whether the plan came from the pool (vs freshly compiled).
func (s *Stmt) checkoutPlan(snap *snapshot) (p *query.Plan, pooled bool, err error) {
	s.mu.Lock()
	if s.snap != snap {
		s.snap = snap
		s.pool = nil
	}
	if n := len(s.pool); n > 0 {
		p := s.pool[n-1]
		s.pool = s.pool[:n-1]
		s.mu.Unlock()
		obsPlansPooled.Inc()
		return p, true, nil
	}
	s.mu.Unlock()
	obsPlansBuilt.Inc()
	p, err = query.NewPlan(s.q, snap.store(), snap.planOptions())
	return p, false, err
}

func (s *Stmt) checkinPlan(snap *snapshot, p *query.Plan) {
	s.mu.Lock()
	if s.snap == snap && len(s.pool) < maxPooledPlans {
		s.pool = append(s.pool, p)
	}
	s.mu.Unlock()
}

// checkoutPlans draws n sibling plans for one parallel execution — the
// pool handing out N plans per execution is what gives every worker its
// own automata and lazy-DFA caches without recompiling on the hot path.
// On error, every plan already drawn is returned.
func (s *Stmt) checkoutPlans(snap *snapshot, n int) ([]*query.Plan, error) {
	plans := make([]*query.Plan, 0, n)
	for i := 0; i < n; i++ {
		p, _, err := s.checkoutPlan(snap)
		if err != nil {
			s.checkinPlans(snap, plans)
			return nil, err
		}
		plans = append(plans, p)
	}
	return plans, nil
}

func (s *Stmt) checkinPlans(snap *snapshot, plans []*query.Plan) {
	for _, p := range plans {
		s.checkinPlan(snap, p)
	}
}

// invalidate drops the pooled plans and the snapshot reference. The
// Database calls it on every cached statement when it publishes a new
// snapshot, so cold statements do not pin superseded graph versions until
// they happen to run again. (Statements held privately by callers release
// theirs lazily, on their next checkout.)
func (s *Stmt) invalidate() {
	s.mu.Lock()
	s.snap = nil
	s.pool = nil
	s.mu.Unlock()
}

// checkoutAutomaton returns a compiled automaton for a param-free path
// statement (automata are graph-independent, so the pool has no snapshot
// key). Parameterized paths compile fresh per execution: the bound labels
// become part of the DFA's alphabet.
func (s *Stmt) checkoutAutomaton(vals map[string]ssd.Label) (*pathexpr.Automaton, bool, error) {
	if len(s.params) > 0 {
		bound, err := pathexpr.BindParams(s.pe, vals)
		if err != nil {
			return nil, false, err
		}
		return pathexpr.Compile(bound), false, nil
	}
	s.mu.Lock()
	if n := len(s.pathPool); n > 0 {
		au := s.pathPool[n-1]
		s.pathPool = s.pathPool[:n-1]
		s.mu.Unlock()
		return au, true, nil
	}
	s.mu.Unlock()
	return pathexpr.Compile(s.pe), true, nil
}

func (s *Stmt) checkinAutomaton(au *pathexpr.Automaton) {
	s.mu.Lock()
	if len(s.pathPool) < maxPooledPlans {
		s.pathPool = append(s.pathPool, au)
	}
	s.mu.Unlock()
}

// Query executes the statement and returns a streaming Rows cursor over
// the current snapshot. Queries and paths stream — rows are produced on
// demand from the executor/traversal; datalog materializes its fixpoint
// first (the engine is inherently bottom-up) and streams the tuples.
// Transform statements have no rows; use Exec.
//
// When the database's parallelism default (SetParallelism) is above one
// and the plan has join work to fan out, the rows stream through the
// morsel-driven parallel executor: the pool hands out one plan per worker
// plus the seeding plan, and the merged output is byte-identical to serial
// execution.
//
// The returned Rows must be Closed to recycle the compiled plan(s). A
// cancelled ctx stops iteration within one pull; Rows.Err reports it.
//
//ssd:mustclose
func (s *Stmt) Query(ctx context.Context, args ...Param) (*Rows, error) {
	return s.queryTrace(ctx, nil, args)
}

// QueryTraced is Query with per-execution tracing: operator-level spans
// (per-atom rows and attributed wall time), the plan-pool outcome, and the
// parallel execution shape are recorded into tr. The trace is complete only
// after Rows.Close returns (a parallel pool must quiesce first). Tracing
// adds one ExecTrace allocation and a clock read per atom pull; the untraced
// Query path stays allocation-free.
//
//ssd:mustclose
func (s *Stmt) QueryTraced(ctx context.Context, tr *QueryTrace, args ...Param) (*Rows, error) {
	return s.queryTrace(ctx, tr, args)
}

func (s *Stmt) queryTrace(ctx context.Context, tr *QueryTrace, args []Param) (*Rows, error) {
	start := time.Now()
	vals, err := s.bindArgs(args)
	if err != nil {
		return nil, err
	}
	snap := s.db.snapshot()
	var pool *storage.PageStore
	var poolStart storage.PoolStats
	if tr != nil {
		tr.Lang = s.lang.String()
		if ps := snap.paged; ps != nil {
			pool, poolStart = ps, ps.Stats()
		}
	}
	switch s.lang {
	case LangQuery:
		p, pooled, err := s.checkoutPlan(snap)
		if err != nil {
			return nil, err
		}
		var workers []*query.Plan
		var morselSize int
		if n := s.db.Parallelism(); n > 1 && p.Parallelizable() {
			// The cost model decides whether fan-out pays off at all (tiny
			// seed sets run serial regardless of the configured ceiling),
			// how many workers the estimated seed count supports, and the
			// morsel size. The gate uses the leading atom's structural
			// fan-out rather than the selectivity-discounted estimate, so a
			// clamped-selectivity underestimate cannot force a large query
			// serial (see Plan.ParallelHint). Best effort: a plan-compile
			// failure here cannot happen for a plan that just compiled
			// against the same snapshot, but fall back to serial rather
			// than failing the query if it does.
			if w, ms := p.ParallelHint(n); w > 1 {
				workers, _ = s.checkoutPlans(snap, w)
				morselSize = ms
			}
		}
		var et *query.ExecTrace
		if tr != nil {
			tr.PlanPooled = pooled
			et = new(query.ExecTrace)
		}
		var cur *query.Cursor
		if len(workers) > 0 {
			obsParallelQueries.Inc()
			if tr != nil {
				tr.Parallel = true
			}
			cur, err = p.CursorParallelTrace(ctx, vals, workers, morselSize, et)
		} else {
			cur, err = p.CursorTrace(ctx, vals, et)
		}
		if err != nil {
			s.checkinPlan(snap, p)
			s.checkinPlans(snap, workers)
			return nil, err
		}
		return &Rows{stmt: s, cols: s.cols, g: snap.g, start: start, trace: tr, et: et, pool: pool, poolStart: poolStart, qb: &queryBackend{cur: cur, plan: p, workers: workers, snap: snap}}, nil
	case LangPath:
		au, pooled, err := s.checkoutAutomaton(vals)
		if err != nil {
			return nil, err
		}
		trav := au.NewTraversal(snap.store())
		if ctx != nil {
			trav.SetContext(ctx)
		}
		trav.Reset(snap.store().Root())
		return &Rows{stmt: s, cols: s.cols, g: snap.g, start: start, trace: tr, pool: pool, poolStart: poolStart, pb: &pathBackend{trav: trav, au: au, pooled: pooled}}, nil
	case LangDatalog:
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		rels, err := datalog.NewEngine(snap.store()).Run(s.dl, datalog.SemiNaive)
		if err != nil {
			return nil, err
		}
		return &Rows{stmt: s, cols: s.cols, g: snap.g, start: start, trace: tr, pool: pool, poolStart: poolStart, db2: newDatalogBackend(rels)}, nil
	default:
		return nil, fmt.Errorf("core: transform statements produce no rows; use Exec")
	}
}

// Exec executes the statement to a whole result database: the instantiated
// select template for queries, the restructured graph for transforms.
// Path and datalog statements have no graph result; use Query. Like the
// legacy Transform family, the result is a fresh handle with fresh caches
// and nothing is logged to any WAL open on the receiver.
func (s *Stmt) Exec(ctx context.Context, args ...Param) (*Database, error) {
	start := time.Now()
	res, err := s.execInner(ctx, args)
	obsQueryDur.Observe(time.Since(start))
	obsQueries.Inc()
	if err != nil {
		obsQueryErrors.Inc()
	}
	return res, err
}

func (s *Stmt) execInner(ctx context.Context, args []Param) (*Database, error) {
	vals, err := s.bindArgs(args)
	if err != nil {
		return nil, err
	}
	snap := s.db.snapshot()
	switch s.lang {
	case LangQuery:
		p, _, err := s.checkoutPlan(snap)
		if err != nil {
			return nil, err
		}
		res, err := p.EvalGraphCtx(ctx, query.Options{Minimize: true, Params: vals})
		s.checkinPlan(snap, p)
		if err != nil {
			return nil, err
		}
		return FromGraph(res), nil
	case LangTransform:
		g, err := s.tr.apply(snap.g, vals)
		if err != nil {
			return nil, err
		}
		return FromGraph(g), nil
	default:
		return nil, fmt.Errorf("core: %s statements produce rows, not a database; use Query", s.lang)
	}
}

// ---------------------------------------------------------------------------
// Rows: the streaming cursor

// Rows is a streaming result cursor in the database/sql style: Next
// advances, Scan/Env read the current row, Err reports early termination,
// Close releases the compiled plan back to the statement pool. Rows is
// bound to the snapshot current at Query time — commits during iteration
// do not affect it.
type Rows struct {
	stmt   *Stmt
	cols   []col
	g      *ssd.Graph // the pinned snapshot's graph; see Graph
	closed bool

	qb  *queryBackend
	pb  *pathBackend
	db2 *datalogBackend

	// Observability: rows are counted in a plain field (one increment per
	// Next, no atomic contention on the stream path) and flushed to the
	// process counters once, at Close, together with the query latency
	// observation. trace/et are non-nil only for QueryTraced executions.
	start time.Time
	n     int64
	trace *QueryTrace
	et    *query.ExecTrace

	// Buffer-pool attribution for the trace: the page store serving the
	// snapshot (nil when in-memory or untraced) and its counters at start.
	pool      *storage.PageStore
	poolStart storage.PoolStats

	shared query.Env // Env()'s reusable row; see Env
}

// Graph returns the graph of the snapshot this result set is bound to —
// the graph node columns refer into. It stays valid (and immutable) for
// the life of the Rows even if commits publish newer snapshots meanwhile.
func (r *Rows) Graph() *ssd.Graph { return r.g }

type queryBackend struct {
	cur     *query.Cursor
	plan    *query.Plan
	workers []*query.Plan // borrowed by the parallel cursor's worker pool
	snap    *snapshot
}

type pathBackend struct {
	trav   *pathexpr.Traversal
	au     *pathexpr.Automaton
	pooled bool
	node   ssd.NodeID
}

type datalogBackend struct {
	names []string
	rels  map[string]*datalog.Relation
	ri    int // current relation
	ti    int // next tuple within it
	rel   string
	tup   datalog.Tuple
}

func newDatalogBackend(rels map[string]*datalog.Relation) *datalogBackend {
	names := make([]string, 0, len(rels))
	for name := range rels {
		names = append(names, name)
	}
	sort.Strings(names)
	return &datalogBackend{names: names, rels: rels}
}

// Next advances to the next row, returning false when the result set is
// exhausted, the context is cancelled, or the cursor is closed. Check Err
// after a false Next to distinguish cancellation from exhaustion.
func (r *Rows) Next() bool {
	if r.closed {
		return false
	}
	switch {
	case r.qb != nil:
		if r.qb.cur.Next() {
			r.n++
			return true
		}
		return false
	case r.pb != nil:
		n, ok := r.pb.trav.Next()
		r.pb.node = n
		if ok {
			r.n++
		}
		return ok
	default:
		b := r.db2
		for b.ri < len(b.names) {
			rel := b.rels[b.names[b.ri]]
			if b.ti < rel.Len() {
				b.rel = b.names[b.ri]
				b.tup = rel.Tuples()[b.ti]
				b.ti++
				r.n++
				return true
			}
			b.ri++
			b.ti = 0
		}
		return false
	}
}

// Err returns the error that stopped iteration early (context
// cancellation), or nil after clean exhaustion.
func (r *Rows) Err() error {
	switch {
	case r.qb != nil:
		return r.qb.cur.Err()
	case r.pb != nil:
		return r.pb.trav.Err()
	default:
		return nil
	}
}

// Columns returns the result column names (see Stmt.Columns).
func (r *Rows) Columns() []string { return r.stmt.Columns() }

// Scan copies the current row into dest, one pointer per column. Accepted
// pointer types: *ssd.NodeID (tree/node columns), *ssd.Label (label
// columns), *[]ssd.Label (path columns; the slice is shared with the
// engine — copy it to retain it past Next), *string (any column,
// formatted), and *datalog.Tuple (datalog tuple column).
func (r *Rows) Scan(dest ...any) error {
	if r.closed {
		return fmt.Errorf("core: Scan on closed Rows")
	}
	if len(dest) != len(r.cols) {
		return fmt.Errorf("core: Scan got %d destinations for %d columns", len(dest), len(r.cols))
	}
	for i, c := range r.cols {
		if err := r.scanCol(c, dest[i]); err != nil {
			return fmt.Errorf("core: Scan column %d (%s): %w", i, c.name, err)
		}
	}
	return nil
}

func (r *Rows) scanCol(c col, dest any) error {
	switch c.kind {
	case colTree, colNode:
		var n ssd.NodeID
		if c.kind == colNode {
			n = r.pb.node
		} else {
			n = r.qb.cur.Tree(c.slot)
		}
		switch d := dest.(type) {
		case *ssd.NodeID:
			*d = n
		case *string:
			*d = fmt.Sprintf("%d", n)
		default:
			return fmt.Errorf("want *ssd.NodeID or *string, got %T", dest)
		}
	case colLabel:
		l := r.qb.cur.Label(c.slot)
		switch d := dest.(type) {
		case *ssd.Label:
			*d = l
		case *string:
			*d = l.String()
		default:
			return fmt.Errorf("want *ssd.Label or *string, got %T", dest)
		}
	case colPath:
		p := r.qb.cur.Path(c.slot)
		switch d := dest.(type) {
		case *[]ssd.Label:
			*d = p
		case *string:
			parts := make([]string, len(p))
			for i, l := range p {
				parts[i] = l.String()
			}
			*d = strings.Join(parts, ".")
		default:
			return fmt.Errorf("want *[]ssd.Label or *string, got %T", dest)
		}
	case colRel:
		d, ok := dest.(*string)
		if !ok {
			return fmt.Errorf("want *string, got %T", dest)
		}
		*d = r.db2.rel
	case colTup:
		switch d := dest.(type) {
		case *datalog.Tuple:
			*d = r.db2.tup
		case *string:
			*d = r.db2.tup.String()
		default:
			return fmt.Errorf("want *datalog.Tuple or *string, got %T", dest)
		}
	}
	return nil
}

// Env returns the current row as a query.Env. The Env and its maps are
// REUSED across Next calls — they are valid only until the next Next or
// Close. Copy what must outlive the row (QueryRows does exactly that).
// Path statements expose their node under the variable "node"; datalog
// rows have an empty Env.
func (r *Rows) Env() query.Env {
	switch {
	case r.qb != nil:
		r.qb.cur.EnvInto(&r.shared)
	case r.pb != nil:
		if r.shared.Trees == nil {
			r.shared = query.Env{
				Trees:  map[string]ssd.NodeID{},
				Labels: map[string]ssd.Label{},
				Paths:  map[string][]ssd.Label{},
			}
		}
		clear(r.shared.Trees)
		r.shared.Trees["node"] = r.pb.node
	}
	return r.shared
}

// envFresh materializes the current row into an independently allocated
// Env, one map build per row — the materializing QueryRows wrapper uses
// it instead of copying the shared Env a second time. Query statements
// only.
func (r *Rows) envFresh() query.Env { return r.qb.cur.Env() }

// Close releases the cursor, returning the compiled plan(s) (or automaton)
// to the statement's pool for reuse. For a parallel cursor this first stops
// the worker pool and waits for it to quiesce, so no returned plan is still
// being mutated. Close is idempotent and always nil; the error return
// mirrors database/sql for easy drop-in use with defer.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	switch {
	case r.qb != nil:
		r.qb.cur.Close()
		r.stmt.checkinPlan(r.qb.snap, r.qb.plan)
		r.stmt.checkinPlans(r.qb.snap, r.qb.workers)
	case r.pb != nil:
		if r.pb.pooled {
			r.stmt.checkinAutomaton(r.pb.au)
		}
	}
	r.finish()
	return nil
}

// finish flushes this execution's observability state: the process-wide
// latency/row/error counters always, and the QueryTrace when tracing. It
// runs after the cursor teardown above, so a parallel pool has quiesced and
// the ExecTrace is final.
func (r *Rows) finish() {
	elapsed := time.Since(r.start)
	obsQueryDur.Observe(elapsed)
	obsQueries.Inc()
	obsQueryRows.Add(r.n)
	err := r.Err()
	if err != nil {
		obsQueryErrors.Inc()
	}
	tr := r.trace
	if tr == nil {
		return
	}
	tr.Rows = r.n
	tr.ElapsedUS = elapsed.Microseconds()
	if err != nil {
		tr.Error = err.Error()
	}
	if et := r.et; et != nil && r.qb != nil {
		tr.fillExec(r.qb.plan, et)
	}
	if r.pool != nil {
		st := r.pool.Stats()
		tr.PoolHits = st.Hits - r.poolStart.Hits
		tr.PoolMisses = st.Misses - r.poolStart.Misses
		tr.PoolEvictions = st.Evictions - r.poolStart.Evictions
	}
}

// ---------------------------------------------------------------------------
// The transform mini-language (LangTransform)

var transformVerbs = map[string]bool{
	"relabel": true, "delete": true, "collapse": true, "expand": true,
}

// transformStmt is one parsed restructuring command. The predicate and the
// target labels may contain $parameters.
type transformStmt struct {
	verb    string
	pred    pathexpr.Pred
	chain   []ssd.Label // relabel: one element; expand: the chain
	chainP  []string    // parameter name per chain slot ("" = literal)
	params  []string
	predSrc string
}

func (t *transformStmt) describe() string {
	out := t.verb + " " + t.predSrc
	if len(t.chain) > 0 {
		parts := make([]string, len(t.chain))
		for i := range t.chain {
			if t.chainP[i] != "" {
				parts[i] = "$" + t.chainP[i]
			} else {
				parts[i] = t.chain[i].String()
			}
		}
		out += " to " + strings.Join(parts, ".")
	}
	return out
}

// parseTransform parses `verb <pred> [to <label>[.<label>...]]`.
func parseTransform(src string) (*transformStmt, error) {
	verb, rest, _ := strings.Cut(strings.TrimSpace(src), " ")
	verb = strings.ToLower(verb)
	if !transformVerbs[verb] {
		return nil, fmt.Errorf("core: unknown transform verb %q (want relabel|delete|collapse|expand)", verb)
	}
	rest = strings.TrimSpace(rest)
	t := &transformStmt{verb: verb}
	needsTo := verb == "relabel" || verb == "expand"
	predSrc := rest
	if needsTo {
		i := strings.LastIndex(rest, " to ")
		if i < 0 {
			return nil, fmt.Errorf("core: %s requires `to <label>`", verb)
		}
		predSrc = strings.TrimSpace(rest[:i])
		for _, part := range strings.Split(strings.TrimSpace(rest[i+len(" to "):]), ".") {
			l, pname, err := parseLabelOrParam(strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			t.chain = append(t.chain, l)
			t.chainP = append(t.chainP, pname)
		}
		if verb == "relabel" && len(t.chain) != 1 {
			return nil, fmt.Errorf("core: relabel takes exactly one target label")
		}
	}
	if predSrc == "" {
		return nil, fmt.Errorf("core: %s requires a predicate", verb)
	}
	pred, err := pathexpr.ParsePred(predSrc)
	if err != nil {
		return nil, err
	}
	t.pred = pred
	t.predSrc = predSrc
	// Parameter signature: predicate params first, then chain params.
	seen := map[string]bool{}
	for _, n := range pathexpr.Params(pathexpr.Atom{Pred: pred}) {
		if !seen[n] {
			seen[n] = true
			t.params = append(t.params, n)
		}
	}
	for _, n := range t.chainP {
		if n != "" && !seen[n] {
			seen[n] = true
			t.params = append(t.params, n)
		}
	}
	return t, nil
}

// parseLabelOrParam parses one target label: `$name` or a literal.
func parseLabelOrParam(src string) (ssd.Label, string, error) {
	if strings.HasPrefix(src, "$") {
		name := src[1:]
		if name == "" {
			return ssd.Label{}, "", fmt.Errorf("core: expected parameter name after $")
		}
		return ssd.Label{}, name, nil
	}
	l, err := ParseLabelLiteral(src)
	return l, "", err
}

// ParseLabelLiteral parses a label literal in the path-expression literal
// syntax: bare word → symbol, "quoted" → string, number → int/float,
// true/false → bool. It is the one parser behind transform target labels
// and ssdq's -param values, so the accepted syntax cannot diverge.
func ParseLabelLiteral(src string) (ssd.Label, error) {
	pred, err := pathexpr.ParsePred(strings.TrimSpace(src))
	if err != nil {
		return ssd.Label{}, err
	}
	ex, ok := pred.(pathexpr.ExactPred)
	if !ok {
		return ssd.Label{}, fmt.Errorf("core: %q is not a label literal", src)
	}
	return ex.L, nil
}

// apply runs the transform against g with parameters bound, returning the
// restructured graph.
func (t *transformStmt) apply(g *ssd.Graph, vals map[string]ssd.Label) (*ssd.Graph, error) {
	pred := t.pred
	if len(t.params) > 0 {
		bound, err := pathexpr.BindParams(pathexpr.Atom{Pred: pred}, vals)
		if err != nil {
			return nil, err
		}
		pred = bound.(pathexpr.Atom).Pred
	}
	chain := make([]ssd.Label, len(t.chain))
	for i, l := range t.chain {
		if t.chainP[i] != "" {
			v, ok := vals[t.chainP[i]]
			if !ok {
				return nil, fmt.Errorf("core: parameter $%s not bound", t.chainP[i])
			}
			chain[i] = v
		} else {
			chain[i] = l
		}
	}
	switch t.verb {
	case "relabel":
		return unql.RelabelWhere(g, pred, chain[0]), nil
	case "delete":
		return unql.DeleteEdges(g, pred), nil
	case "collapse":
		return unql.CollapseEdges(g, pred), nil
	default: // expand
		return unql.ExpandEdges(g, pred, chain...), nil
	}
}
