package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/ssd"
	"repro/internal/storage"
	"repro/internal/workload"
)

// pagedSeedDir saves the movie workload as a durable directory with one
// snapshot generation, so OpenPathOptions can bind a page store to it.
func pagedSeedDir(t *testing.T, entries int) string {
	t.Helper()
	dir := t.TempDir()
	if err := FromGraph(workload.Movies(workload.DefaultMovieConfig(entries))).SavePath(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// frontEndObs is every read front-end's answer in a canonical, comparable
// form: query results as canonicalized graph text, path results as sorted
// node IDs, datalog results as sorted tuple strings.
type frontEndObs struct {
	selSerial   string
	selParallel string
	pathIDs     []ssd.NodeID
	datalog     []string
	unql        string
}

func observeFrontEnds(t *testing.T, db *Database) frontEndObs {
	t.Helper()
	const sel = `select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = "Allen"`
	var o frontEndObs

	db.SetParallelism(1)
	res, err := db.Query(sel)
	if err != nil {
		t.Fatal(err)
	}
	o.selSerial = canonDB(res)

	db.SetParallelism(4)
	res, err = db.Query(sel)
	if err != nil {
		t.Fatal(err)
	}
	o.selParallel = canonDB(res)
	db.SetParallelism(1)

	o.pathIDs, err = db.PathQuery(`Entry._.Title._`)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(o.pathIDs, func(i, j int) bool { return o.pathIDs[i] < o.pathIDs[j] })

	rels, err := db.Datalog(`
		reach(X) :- root(X).
		reach(Y) :- reach(X), edge(X, _, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range rels["reach"].Tuples() {
		o.datalog = append(o.datalog, fmt.Sprint(tu))
	}
	sort.Strings(o.datalog)

	s, err := db.PrepareCached(`unql: relabel Title to Name`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Exec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	o.unql = canonDB(out)
	return o
}

func (o frontEndObs) assertEqual(t *testing.T, want frontEndObs) {
	t.Helper()
	if o.selSerial != want.selSerial {
		t.Error("serial select differs between paged and in-memory stores")
	}
	if o.selParallel != want.selParallel {
		t.Error("parallel select differs between paged and in-memory stores")
	}
	if o.selSerial != o.selParallel {
		t.Error("serial and parallel select disagree")
	}
	if fmt.Sprint(o.pathIDs) != fmt.Sprint(want.pathIDs) {
		t.Errorf("path results differ: %d ids vs %d ids", len(o.pathIDs), len(want.pathIDs))
	}
	if fmt.Sprint(o.datalog) != fmt.Sprint(want.datalog) {
		t.Errorf("datalog results differ: %d tuples vs %d tuples", len(o.datalog), len(want.datalog))
	}
	if o.unql != want.unql {
		t.Error("unql transform result differs between paged and in-memory stores")
	}
}

// TestPagedByteIdentity is the satellite cross-check: every front-end must
// produce byte-identical results (under bisim canonicalization) whether the
// snapshot is served from memory or through the paged store, serially and in
// parallel, even with a pool far smaller than the dataset.
func TestPagedByteIdentity(t *testing.T) {
	dir := pagedSeedDir(t, 300)

	mem, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := observeFrontEnds(t, mem)
	if _, ok := mem.PagePoolStats(); ok {
		t.Fatal("default open should not be page-backed")
	}
	if err := mem.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Pool of ~8 pages against a few-hundred-KiB dataset: far under 10% of
	// the data, so the identity holds under real eviction pressure.
	paged, err := OpenPathOptions(dir, Options{PoolBytes: 8 * storage.DefaultPageSize})
	if err != nil {
		t.Fatal(err)
	}
	defer paged.CloseWAL()
	got := observeFrontEnds(t, paged)
	got.assertEqual(t, want)

	st, ok := paged.PagePoolStats()
	if !ok {
		t.Fatal("paged open did not bind a page store")
	}
	if st.Misses == 0 {
		t.Error("paged run never touched the page file")
	}

	// Traced executions attribute pool activity to the query.
	s, err := paged.PrepareCached(`select {T: T} from DB.Entry.Movie M, M.Title T`)
	if err != nil {
		t.Fatal(err)
	}
	var tr QueryTrace
	rows, err := s.QueryTraced(context.Background(), &tr)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.PoolHits+tr.PoolMisses == 0 {
		t.Error("query trace on a paged snapshot recorded no pool activity")
	}
}

// TestPagedTinyPoolStress drives the parallel executor through a two-page
// pool — essentially every touch evicts — and checks both the answers and
// that the resident set stays bounded by the budget (modulo transiently
// pinned frames, which the accessor releases at morsel boundaries).
func TestPagedTinyPoolStress(t *testing.T) {
	dir := pagedSeedDir(t, 200)

	mem, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := observeFrontEnds(t, mem)
	if err := mem.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	paged, err := OpenPathOptions(dir, Options{PoolBytes: 2 * storage.DefaultPageSize})
	if err != nil {
		t.Fatal(err)
	}
	defer paged.CloseWAL()
	got := observeFrontEnds(t, paged)
	got.assertEqual(t, want)

	st, ok := paged.PagePoolStats()
	if !ok {
		t.Fatal("paged open did not bind a page store")
	}
	if st.Evictions == 0 {
		t.Error("two-page pool saw no evictions")
	}
	if st.PinnedPages != 0 {
		t.Errorf("%d pages still pinned after queries finished", st.PinnedPages)
	}
	if limit := int64(2 * storage.DefaultPageSize); st.ResidentBytes > limit {
		t.Errorf("resident %d bytes exceeds the %d-byte budget with nothing pinned", st.ResidentBytes, limit)
	}
}

// TestPagedRecovery covers the page-file lifecycle across restarts: a
// checkpoint writes the generation's page image, reopening binds to it, and
// a missing or torn image is rebuilt from the snapshot rather than trusted.
func TestPagedRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPathOptions(dir, Options{PoolBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh directory checkpoints generation 1 immediately so the paged
	// read path exists from the first query.
	if _, ok := db.PagePoolStats(); !ok {
		t.Fatal("fresh paged open did not bind a page store")
	}
	commitN(t, db, 0, 5)
	info, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	want := canonDB(db)
	if _, err := os.Stat(filepath.Join(dir, pageName(info.Seq))); err != nil {
		t.Fatalf("checkpoint %d left no page image: %v", info.Seq, err)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Clean reopen binds the existing image without replay.
	re, err := OpenPathOptions(dir, Options{PoolBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := canonDB(re); got != want {
		t.Fatalf("reopened state differs:\nwant %s\ngot  %s", want, got)
	}
	if _, ok := re.PagePoolStats(); !ok {
		t.Fatal("reopen did not bind a page store")
	}
	if err := re.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// A lost page image must be rebuilt from the snapshot.
	pagePath := filepath.Join(dir, pageName(re.SnapshotSeq()))
	if err := os.Remove(pagePath); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenPathOptions(dir, Options{PoolBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if got := canonDB(re2); got != want {
		t.Fatalf("state after page-image rebuild differs:\nwant %s\ngot  %s", want, got)
	}
	if _, err := os.Stat(pagePath); err != nil {
		t.Fatalf("reopen did not rebuild the page image: %v", err)
	}
	if err := re2.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// A torn image (truncated write) is detected and rebuilt, not served.
	if err := os.Truncate(pagePath, 100); err != nil {
		t.Fatal(err)
	}
	re3, err := OpenPathOptions(dir, Options{PoolBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer re3.CloseWAL()
	if got := canonDB(re3); got != want {
		t.Fatalf("state after torn-image rebuild differs:\nwant %s\ngot  %s", want, got)
	}
	if _, err := re3.Query(`select {N: X} from DB._ X`); err != nil {
		t.Fatalf("query after rebuild: %v", err)
	}
}

// TestPagedCommitThenCheckpoint pins down the freshness contract: commits
// republish an un-paged snapshot (queries fall back to the in-memory graph,
// never a stale page image), and the next checkpoint re-binds the paged
// read path at the new generation.
func TestPagedCommitThenCheckpoint(t *testing.T) {
	dir := pagedSeedDir(t, 50)
	db, err := OpenPathOptions(dir, Options{PoolBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.CloseWAL()

	if _, ok := db.PagePoolStats(); !ok {
		t.Fatal("paged open did not bind a page store")
	}
	if err := db.MutateScript("addnode; addedge 0 999 $0"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.PagePoolStats(); ok {
		t.Fatal("post-commit snapshot should fall back to memory until the next checkpoint")
	}
	ids, err := db.PathQuery(`999`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("fresh commit invisible to path query: got %d hits", len(ids))
	}

	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.PagePoolStats(); !ok {
		t.Fatal("checkpoint did not re-bind the paged read path")
	}
	ids, err = db.PathQuery(`999`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("committed edge missing from paged store: got %d hits", len(ids))
	}
}
