package core

import (
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/pathexpr"
	"repro/internal/schema"
	"repro/internal/ssd"
	"repro/internal/unql"
	"repro/internal/workload"
)

func fig1DB(t *testing.T) *Database {
	t.Helper()
	return FromGraph(workload.Fig1(false))
}

func TestParseTextAndFormat(t *testing.T) {
	db, err := ParseText(`{a: 1, b: "x"}`)
	if err != nil {
		t.Fatal(err)
	}
	if db.Format() == "" {
		t.Error("empty format")
	}
	if _, err := ParseText(`{broken`); err == nil {
		t.Error("bad text should error")
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	db := fig1DB(t)
	path := filepath.Join(t.TempDir(), "fig1.ssdg")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Equal(back) {
		t.Error("save/open changed the value")
	}
}

func TestQueryEndToEnd(t *testing.T) {
	db := fig1DB(t)
	res, err := db.Query(`
		select {Title: T}
		from DB.Entry.Movie M, M.Title T, M.Cast._* A
		where A = "Allen"`)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ParseText(`{Title: {"Play it again, Sam"}}`)
	if !res.Equal(want) {
		t.Errorf("got %s", res.Format())
	}
	if _, err := db.Query(`select`); err == nil {
		t.Error("bad query should error")
	}
}

func TestQueryRows(t *testing.T) {
	db := fig1DB(t)
	rows, err := db.QueryRows(`select T from DB.Entry.Movie.Title T`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestPathQueryAndIndexedAgree(t *testing.T) {
	db := FromGraph(workload.Movies(workload.DefaultMovieConfig(100)))
	for _, src := range []string{
		"Entry.Movie.Title._",
		`_*."Bogart"`,
		"Entry._.Cast.(isint|Credit.Actors)._",
	} {
		direct, err := db.PathQuery(src)
		if err != nil {
			t.Fatal(err)
		}
		indexed, err := db.PathQueryIndexed(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(direct) != len(indexed) {
			t.Errorf("%s: direct %d, indexed %d", src, len(direct), len(indexed))
		}
	}
	if _, err := db.PathQuery("(("); err == nil {
		t.Error("bad path should error")
	}
}

func TestDatalogEndToEnd(t *testing.T) {
	db := fig1DB(t)
	res, err := db.Datalog(`
		reach(X) :- root(X).
		reach(Y) :- reach(X), edge(X, _, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := db.Graph().Accessible()
	if res["reach"].Len() != acc.NumNodes() {
		t.Errorf("reach = %d, want %d", res["reach"].Len(), acc.NumNodes())
	}
	if _, err := db.Datalog(`broken`); err == nil {
		t.Error("bad program should error")
	}
}

func TestBrowsingQueries(t *testing.T) {
	db := fig1DB(t)
	// The three §1.3 bullets.
	if hits := db.FindString("Casablanca"); len(hits) != 1 {
		t.Errorf("FindString = %d hits", len(hits))
	}
	if hits := db.IntsGreaterThan(65536); len(hits) != 1 { // Episode
		t.Errorf("IntsGreaterThan = %d hits", len(hits))
	}
	attrs := db.AttrsLike("Cast%")
	if len(attrs) != 1 || attrs[0] != ssd.Sym("Cast") {
		t.Errorf("AttrsLike = %v", attrs)
	}
	paths := db.Browse(2, 50)
	if len(paths) == 0 {
		t.Error("Browse returned nothing")
	}
}

func TestSchemaFlow(t *testing.T) {
	db := fig1DB(t)
	s := db.InferSchema()
	if !db.Conforms(s) {
		t.Error("database must conform to inferred schema")
	}
	other := schema.MustParse(`{Nope: {}}`)
	if db.Conforms(other) {
		t.Error("must not conform to unrelated schema")
	}
}

func TestRestructuringFlow(t *testing.T) {
	bad := FromGraph(workload.Fig1(true))
	good := fig1DB(t)
	fixed := bad.RelabelWhere(pathexpr.ExactPred{L: ssd.Str("Bacal")}, ssd.Str("Bacall"))
	if !fixed.Equal(good) {
		t.Error("Bacall fix failed")
	}
	noRefs := good.DeleteEdges(pathexpr.ExactPred{L: ssd.Sym("References")})
	refs, _ := noRefs.PathQuery("_*.References")
	if len(refs) != 0 {
		t.Error("References survived deletion")
	}
	collapsed := good.CollapseEdges(pathexpr.ExactPred{L: ssd.Sym("Credit")})
	hits, _ := collapsed.PathQuery("Entry.Movie.Cast.Actors")
	if len(hits) != 1 {
		t.Errorf("collapsed Actors hits = %d, want 1", len(hits))
	}
}

func TestRelationalExchange(t *testing.T) {
	rdb := workload.Relational(20, 5, 3)
	db := ImportRelational(rdb)
	back, err := db.ExportRelational()
	if err != nil {
		t.Fatal(err)
	}
	if back["movies"].Len() != 20 || back["directors"].Len() != 5 {
		t.Errorf("exchange sizes: %d movies, %d directors", back["movies"].Len(), back["directors"].Len())
	}
	// Non-relational data does not export.
	if _, err := fig1DB(t).ExportRelational(); err == nil {
		t.Error("figure 1 is not relational; export must fail")
	}
}

func TestMinimizeAndEqual(t *testing.T) {
	db, _ := ParseText(`{a: {v: 1}, b: {v: 1}}`)
	m := db.Minimize()
	if !db.Equal(m) {
		t.Error("minimize changed value")
	}
	if m.Stats().Nodes >= db.Stats().Nodes {
		t.Error("minimize should shrink duplicated structure")
	}
}

func TestDescribe(t *testing.T) {
	if fig1DB(t).Describe() == "" {
		t.Error("empty describe")
	}
}

func TestTransformCustom(t *testing.T) {
	db := fig1DB(t)
	// Rename all Title edges to TITLE via the raw Transform hook.
	out := db.Transform(func(l ssd.Label, _, _ ssd.NodeID, _ *ssd.Graph) unql.Action {
		if s, ok := l.Symbol(); ok && s == "Title" {
			return unql.RelabelTo(ssd.Sym("TITLE"))
		}
		return unql.Keep(l)
	})
	hits, _ := out.PathQuery("_*.TITLE")
	if len(hits) != 3 {
		t.Errorf("TITLE edges = %d, want 3", len(hits))
	}
	gone, _ := out.PathQuery("_*.Title")
	if len(gone) != 0 {
		t.Error("Title edges survived")
	}
}

func TestOEMExchange(t *testing.T) {
	db := fig1DB(t)
	text := db.FormatOEM()
	back, err := ParseOEM(text)
	if err != nil {
		t.Fatal(err)
	}
	// Symbol-path behaviour survives (under the synthetic root label).
	orig, _ := db.PathQuery("Entry.Movie.Title")
	via, _ := back.PathQuery("root.Entry.Movie.Title")
	if len(orig) != len(via) {
		t.Errorf("OEM round trip: %d vs %d title nodes", len(orig), len(via))
	}
	if _, err := ParseOEM("not oem"); err == nil {
		t.Error("bad OEM should error")
	}
}

func TestConcurrentQueries(t *testing.T) {
	// Queries must be safe to run concurrently on one Database handle: the
	// lazy label-index/guide builds, the graph's lazy reverse adjacency
	// (index-backward access), and per-plan automata are all exercised.
	db := FromGraph(workload.Movies(workload.DefaultMovieConfig(50)))
	queries := []string{
		`select T from DB.Entry.Movie.Title T`,
		`select X from DB.Entry.TV-Show.Episode X`, // index-backward eligible
		`select X from DB._*.Episode X`,            // index-seek eligible
		`select @P from DB.@P X where pathlen(@P) = 3`,
		`select {Title: T} from DB.Entry.Movie M, M.Title T where exists M.Cast`,
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, src := range queries {
				if _, err := db.Query(src); err != nil {
					t.Errorf("query %q: %v", src, err)
				}
			}
		}()
	}
	wg.Wait()
}
