package core

// QueryTrace is the per-execution trace QueryTraced records: the JSON-ready
// face of query.ExecTrace plus statement-level context (language, plan-pool
// outcome, row count, wall time). The server appends it to the NDJSON
// status line under ?trace=1 and embeds it in slow-query log records; ssdq
// prints it for -trace.

import "repro/internal/query"

// AtomTrace is one operator-level span: a planned atom's descriptor, the
// optimizer's cardinality estimate, and what actually happened.
type AtomTrace struct {
	// Op describes the atom: variable, source path, access method — e.g.
	// `M := DB.Entry.Movie [index-seek]`.
	Op string `json:"op"`
	// Est is the cost model's estimated rows surviving this atom.
	Est float64 `json:"est"`
	// Rows is the actual rows that survived the atom's filters, summed
	// across parallel workers.
	Rows int64 `json:"rows"`
	// TimeUS is wall time attributed to the atom's iterators in
	// microseconds; under parallel execution worker times sum, so the
	// total may exceed the query's elapsed time.
	TimeUS int64 `json:"time_us"`
}

// QueryTrace records one statement execution. Populate by passing a zero
// value to Stmt.QueryTraced and reading it after Rows.Close.
type QueryTrace struct {
	Lang       string `json:"lang"`
	PlanPooled bool   `json:"plan_pooled"`

	Parallel    bool  `json:"parallel"`
	Workers     int   `json:"workers,omitempty"`
	MorselSize  int   `json:"morsel_size,omitempty"`
	Morsels     int64 `json:"morsels,omitempty"`
	Splits      int64 `json:"splits,omitempty"`
	SplitMisses int64 `json:"split_misses,omitempty"`
	MergeStalls int64 `json:"merge_stalls,omitempty"`

	// Paged-store buffer pool activity over this execution's lifetime,
	// present only when the snapshot is page-backed. The counters are
	// store-wide deltas, so concurrent queries on the same pool bleed into
	// each other's numbers — treat them as attribution, not accounting.
	PoolHits      int64 `json:"pool_hits,omitempty"`
	PoolMisses    int64 `json:"pool_misses,omitempty"`
	PoolEvictions int64 `json:"pool_evictions,omitempty"`

	Rows      int64  `json:"rows"`
	ElapsedUS int64  `json:"elapsed_us"`
	Error     string `json:"error,omitempty"`

	Atoms []AtomTrace `json:"atoms,omitempty"`
}

// fillExec folds the executor-level trace into the statement trace,
// labeling each span from the plan. Runs at Rows.Close, after the cursor
// (and any parallel pool) has quiesced.
func (t *QueryTrace) fillExec(p *query.Plan, et *query.ExecTrace) {
	t.Workers = et.Workers
	t.MorselSize = et.MorselSize
	t.Morsels = et.Morsels
	t.Splits = et.Splits
	t.SplitMisses = et.SplitMisses
	t.MergeStalls = et.MergeStalls

	descs := p.AtomDescs()
	infos := p.Atoms()
	t.Atoms = make([]AtomTrace, len(et.AtomRows))
	for i := range t.Atoms {
		at := AtomTrace{Rows: et.AtomRows[i], TimeUS: et.AtomNanos[i] / 1e3}
		if i < len(descs) {
			at.Op = descs[i]
		}
		if i < len(infos) {
			at.Est = infos[i].Est
		}
		t.Atoms[i] = at
	}
}
