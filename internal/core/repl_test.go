package core

import (
	"context"
	"errors"
	"os"
	"testing"
	"time"

	"repro/internal/mutate"
	"repro/internal/ssd"
	"repro/internal/storage"
)

// TestCommitSeqCountsAndPersists: the replication position counts every
// logged commit from the directory's birth and survives checkpoints and
// restarts — a reopened database resumes at exactly snapshot-seq + replayed.
func TestCommitSeqCountsAndPersists(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.CommitSeq(); got != 0 {
		t.Fatalf("fresh CommitSeq = %d, want 0", got)
	}
	commitN(t, db, 0, 5)
	if got := db.CommitSeq(); got != 5 {
		t.Fatalf("after 5 commits CommitSeq = %d, want 5", got)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitN(t, db, 5, 3)
	if got := db.CommitSeq(); got != 8 {
		t.Fatalf("after checkpoint + 3 commits CommitSeq = %d, want 8", got)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseWAL()
	if got := re.CommitSeq(); got != 8 {
		t.Fatalf("reopened CommitSeq = %d, want 8 (snapshot 5 + 3 replayed)", got)
	}
}

// TestMutateScriptSeqReturnsPosition: the seq a commit returns is the
// position CommitSeq reports — the token a client can demand on its next
// read.
func TestMutateScriptSeqReturnsPosition(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.CloseWAL()
	for want := uint64(1); want <= 3; want++ {
		seq, err := db.MutateScriptSeq("addnode; addedge 0 x $0")
		if err != nil {
			t.Fatal(err)
		}
		if seq != want || db.CommitSeq() != want {
			t.Fatalf("commit %d returned seq %d (CommitSeq %d)", want, seq, db.CommitSeq())
		}
	}
}

// TestReplCursorConvergence is replication end to end at the core layer: a
// follower that applies the leader's streamed frames lands on a
// byte-identical graph (bisim canonical form) at the same position — even
// when the stream starts mid-history.
func TestReplCursorConvergence(t *testing.T) {
	leader, err := OpenPath(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer leader.CloseWAL()
	follower, err := OpenPath(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer follower.CloseWAL()

	commitN(t, leader, 0, 6)
	cur, leaderSeq, err := leader.ReplCursor(follower.CommitSeq())
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if leaderSeq != 6 {
		t.Fatalf("leader position = %d, want 6", leaderSeq)
	}
	for follower.CommitSeq() < leaderSeq {
		frame, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := follower.ApplyReplicated(frame); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := canonDB(follower), canonDB(leader); got != want {
		t.Fatalf("follower not byte-identical to leader:\nleader   %s\nfollower %s", want, got)
	}

	// The stream tails: more leader commits, resumed cursor from the
	// follower's position, same invariant.
	commitN(t, leader, 6, 4)
	cur2, leaderSeq, err := leader.ReplCursor(follower.CommitSeq())
	if err != nil {
		t.Fatal(err)
	}
	defer cur2.Close()
	for follower.CommitSeq() < leaderSeq {
		frame, err := cur2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := follower.ApplyReplicated(frame); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := canonDB(follower), canonDB(leader); got != want {
		t.Fatalf("after tail: follower differs from leader")
	}
	if _, err := cur2.Next(); !errors.Is(err, mutate.ErrNoFrame) {
		t.Fatalf("caught-up cursor: err = %v, want ErrNoFrame", err)
	}
}

// TestReplCursorGoneAfterCheckpoint: a checkpoint truncates the log, so a
// position before the fold must be refused with ErrReplGone (the follower
// bootstraps instead), while positions at or after it still stream.
func TestReplCursorGoneAfterCheckpoint(t *testing.T) {
	db, err := OpenPath(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.CloseWAL()
	commitN(t, db, 0, 4)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitN(t, db, 4, 2)

	if _, _, err := db.ReplCursor(3); !errors.Is(err, ErrReplGone) {
		t.Fatalf("position 3 (pre-checkpoint): err = %v, want ErrReplGone", err)
	}
	cur, seq, err := db.ReplCursor(4)
	if err != nil {
		t.Fatalf("position 4 (the fold point): %v", err)
	}
	defer cur.Close()
	if seq != 6 {
		t.Fatalf("leader position = %d, want 6", seq)
	}
	for i := 0; i < 2; i++ {
		if _, err := cur.Next(); err != nil {
			t.Fatalf("tail frame %d: %v", i, err)
		}
	}
}

// TestWaitForSeq: an already-reached position returns immediately; a future
// one blocks until the commit that reaches it; an unreached one times out
// with the context's error — the 503 path, never a stale read.
func TestWaitForSeq(t *testing.T) {
	db, err := OpenPath(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.CloseWAL()
	commitN(t, db, 0, 2)

	if err := db.WaitForSeq(context.Background(), 2); err != nil {
		t.Fatalf("reached position: %v", err)
	}

	done := make(chan error, 1)
	go func() { done <- db.WaitForSeq(context.Background(), 3) }()
	time.Sleep(10 * time.Millisecond) // let the waiter park
	commitN(t, db, 2, 1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("wait released by commit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitForSeq(3) not released by the commit that reached 3")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := db.WaitForSeq(ctx, 100); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("unreachable position: err = %v, want deadline exceeded", err)
	}
}

// TestSeedPathSnapshot: a brand-new follower directory seeded with the
// leader's raw snapshot bytes opens as that state at that position — and a
// directory that already holds a database refuses the seed.
func TestSeedPathSnapshot(t *testing.T) {
	leaderDir := t.TempDir()
	leader, err := OpenPath(leaderDir)
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, leader, 0, 5)
	if _, err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := canonDB(leader)
	path, _, ok := leader.SnapshotFile()
	if !ok {
		t.Fatal("leader has no snapshot generation after checkpoint")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	folDir := t.TempDir()
	if err := SeedPathSnapshot(folDir, data); err != nil {
		t.Fatal(err)
	}
	fol, err := OpenPath(folDir)
	if err != nil {
		t.Fatal(err)
	}
	defer fol.CloseWAL()
	if got := canonDB(fol); got != want {
		t.Fatalf("seeded follower differs from leader:\nwant %s\ngot  %s", want, got)
	}
	if got := fol.CommitSeq(); got != 5 {
		t.Fatalf("seeded follower CommitSeq = %d, want 5", got)
	}

	if err := SeedPathSnapshot(folDir, data); err == nil {
		t.Fatal("seeding an initialized directory did not fail")
	}
	if err := SeedPathSnapshot(t.TempDir(), []byte("not a snapshot")); err == nil {
		t.Fatal("seeding garbage bytes did not fail")
	}
}

// TestReplaceFromSnapshot is the mid-life re-bootstrap: a follower whose
// position the leader truncated away adopts the leader's snapshot outright —
// state, derived structures and position — and the adoption is durable
// across its own restart.
func TestReplaceFromSnapshot(t *testing.T) {
	leader, err := OpenPath(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, leader, 0, 7)
	if _, err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := canonDB(leader)
	path, _, _ := leader.SnapshotFile()
	snap, err := storage.ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	if snap.CommitSeq != 7 {
		t.Fatalf("leader snapshot CommitSeq = %d, want 7", snap.CommitSeq)
	}

	folDir := t.TempDir()
	fol, err := OpenPath(folDir)
	if err != nil {
		t.Fatal(err)
	}
	commitN(t, fol, 100, 2) // diverged local history, about to be superseded
	if err := fol.ReplaceFromSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if got := canonDB(fol); got != want {
		t.Fatalf("after ReplaceFromSnapshot: follower differs from leader")
	}
	if got := fol.CommitSeq(); got != 7 {
		t.Fatalf("adopted CommitSeq = %d, want 7", got)
	}
	// Queries run against the adopted derived structures.
	if len(fol.FindString("never-there")) != 0 {
		t.Fatal("value index answered nonsense after adoption")
	}
	if err := fol.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenPath(folDir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseWAL()
	if got := canonDB(re); got != want {
		t.Fatalf("restart after adoption differs from leader")
	}
	if got := re.CommitSeq(); got != 7 {
		t.Fatalf("restarted CommitSeq = %d, want 7", got)
	}
}

// TestUnloggedApplyDoesNotAdvanceSeq: on a WAL-backed database only logged
// commits advance the replication position — an unlogged apply would break
// the position↔frame mapping replication depends on.
func TestUnloggedApplyDoesNotAdvanceSeq(t *testing.T) {
	db, err := OpenPath(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.CloseWAL()
	commitN(t, db, 0, 2)
	b := db.Begin()
	n := b.AddNode()
	if err := b.AddEdge(db.Graph().Root(), ssd.Sym("side"), n); err != nil {
		t.Fatal(err)
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if got := db.CommitSeq(); got != 2 {
		t.Fatalf("unlogged apply moved CommitSeq to %d, want 2", got)
	}
	commitN(t, db, 2, 1)
	if got := db.CommitSeq(); got != 3 {
		t.Fatalf("logged commit after unlogged apply: CommitSeq = %d, want 3", got)
	}
}
