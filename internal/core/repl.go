package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/mutate"
	"repro/internal/obs"
	"repro/internal/storage"
)

// This file is the replication face of a Database: the accessors a leader's
// /replicate endpoints and a follower's apply loop are built from.
//
// The unit of replication is the committed batch, and the coordinate system
// is the commit sequence: replSeq counts every logged commit since the
// durable directory's birth. The WAL holds a contiguous suffix of that
// history — its first frame is batch number replSeq-Batches() — and each
// checkpoint persists the sequence it folded (Snapshot.CommitSeq), so the
// mapping survives restarts and transfers to any follower that boots from
// this database's snapshot files. A leader ships frames by sequence number;
// a follower applies them through the ordinary commit path (so its own WAL,
// checkpoints, indexes and statistics are maintained exactly as a writer's
// would be) and lands, batch for batch, on a byte-identical graph.

// ErrReplGone reports that a requested replication position has been
// truncated out of the leader's WAL by a checkpoint: the follower is too
// far behind to stream and must bootstrap from a snapshot instead.
var ErrReplGone = errors.New("core: replication position precedes the WAL; bootstrap from a snapshot")

var obsCommitSeq = obs.Default.Gauge("ssd_commit_seq",
	"Replication position: batches committed since the durable directory's birth.")

// CommitSeq returns the database's replication position — the number of
// logged batches committed since the durable directory's birth (since
// handle creation for non-durable databases). It is the value carried by
// X-SSD-Seq read-your-writes tokens. Lock-free.
func (db *Database) CommitSeq() uint64 { return db.replSeq.Load() }

// advanceSeq moves the replication position forward by n and wakes every
// waiter (read-your-writes reads, replication streams). The position is
// advanced before the broadcast so a woken waiter always observes it.
func (db *Database) advanceSeq(n uint64) {
	obsCommitSeq.Set(int64(db.replSeq.Add(n)))
	db.seqMu.Lock()
	ch := db.seqCh
	db.seqCh = nil
	db.seqMu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// setSeq rebinds the replication position outright — bootstrap installing a
// leader snapshot — and wakes waiters the same way a commit would.
func (db *Database) setSeq(seq uint64) {
	obsCommitSeq.Set(int64(seq))
	db.replSeq.Store(seq)
	db.seqMu.Lock()
	ch := db.seqCh
	db.seqCh = nil
	db.seqMu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// seqChanged returns a channel closed at the next commit. Callers must
// re-check CommitSeq after acquiring it: the channel covers commits from
// this call onward, not the one that may have just happened.
func (db *Database) seqChanged() <-chan struct{} {
	db.seqMu.Lock()
	defer db.seqMu.Unlock()
	if db.seqCh == nil {
		db.seqCh = make(chan struct{})
	}
	return db.seqCh
}

// SeqChanged returns a channel closed at the next commit — the broadcast a
// replication stream parks on between frames. Callers must re-check
// CommitSeq after acquiring it.
func (db *Database) SeqChanged() <-chan struct{} { return db.seqChanged() }

// WaitForSeq blocks until the database's replication position reaches seq or
// ctx ends — the read-your-writes primitive: a replica holds a tokened read
// here instead of serving data older than the client's own write.
func (db *Database) WaitForSeq(ctx context.Context, seq uint64) error {
	for {
		if db.CommitSeq() >= seq {
			return nil
		}
		ch := db.seqChanged()
		if db.CommitSeq() >= seq { // re-check: a commit may have raced the subscribe
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// MutateScriptSeq is MutateScript returning the replication position after
// the commit — the X-SSD-Seq token a serving layer hands back so the
// client's next read can demand its own write.
//
//ssd:locks writeMu
func (db *Database) MutateScriptSeq(src string) (uint64, error) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	b, err := mutate.ParseScript(src, db.snapshot().g)
	if err != nil {
		return 0, err
	}
	if err := db.commitLocked(b, true); err != nil {
		return 0, err
	}
	return db.replSeq.Load(), nil
}

// ReplCursor opens a frame cursor positioned at global sequence from, and
// also reports the current commit position. It returns ErrReplGone when a
// checkpoint has already truncated that position out of the log. The cursor
// file handle is opened under the writer lock so it is pinned to the same
// log incarnation the position arithmetic described; frames the caller then
// reads are immutable history even while the writer keeps appending.
//
//ssd:locks writeMu
func (db *Database) ReplCursor(from uint64) (*mutate.Cursor, uint64, error) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.wal == nil {
		return nil, 0, fmt.Errorf("core: database has no write-ahead log to replicate")
	}
	seq := db.replSeq.Load()
	walStart := seq - uint64(db.wal.Batches())
	if from < walStart {
		return nil, seq, ErrReplGone
	}
	c, err := mutate.OpenCursor(db.wal.Path())
	if err != nil {
		return nil, seq, err
	}
	if err := c.Skip(int(from - walStart)); err != nil {
		// The skipped prefix was complete on disk when we took the lock, so
		// any failure here is real I/O trouble, not a torn tail.
		c.Close()
		return nil, seq, fmt.Errorf("core: positioning replication cursor at %d: %w", from, err)
	}
	return c, seq, nil
}

// ApplyReplicated decodes one streamed batch frame and commits it through
// the ordinary write path: applied copy-on-write, appended to the local WAL,
// published as a new MVCC snapshot with incremental index/DataGuide/stats
// maintenance, and counted against the replication position. It returns the
// position after the apply. The frame must extend the current state — a
// batch built against a different base is rejected, which is exactly how a
// diverged follower surfaces instead of silently forking.
//
//ssd:locks writeMu
func (db *Database) ApplyReplicated(frame []byte) (uint64, error) {
	b, err := mutate.DecodeBatch(frame)
	if err != nil {
		return 0, err
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if err := db.commitLocked(b, true); err != nil {
		return 0, err
	}
	return db.replSeq.Load(), nil
}

// SnapshotFile returns the path and generation of the newest durable
// snapshot on disk — what a leader streams to a bootstrapping follower.
// ok=false when the directory holds no generation yet (checkpoint first).
func (db *Database) SnapshotFile() (path string, seq uint64, ok bool) {
	if db.dir == "" {
		return "", 0, false
	}
	cur := db.snapSeq.Load()
	if cur == 0 {
		return "", 0, false
	}
	return filepath.Join(db.dir, snapName(cur)), cur, true
}

// SeedPathSnapshot initializes dir as a durable directory whose first
// generation is the already-encoded snapshot image data — the bootstrap
// path a brand-new follower takes with the bytes it downloaded from its
// leader. The image is validated by a full decode before anything is
// written, and an initialized directory is refused for the same reason
// SavePath refuses one: silently merging histories could orphan commits.
func SeedPathSnapshot(dir string, data []byte) error {
	if _, err := storage.DecodeSnapshot(data); err != nil {
		return fmt.Errorf("core: bootstrap snapshot does not decode: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	initialized, err := PathInitialized(dir)
	if err != nil {
		return err
	}
	if initialized {
		return fmt.Errorf("core: %s already holds a durable database", dir)
	}
	tmp := filepath.Join(dir, "bootstrap.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapName(1))); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReplaceFromSnapshot rebinds the database to a decoded leader snapshot —
// the mid-life bootstrap a follower falls back to when the leader has
// truncated past its position (ErrReplGone). It persists the snapshot as the
// next local generation, truncates the local log down to an empty one bound
// to it, publishes the snapshot's graph and derived structures, and adopts
// its replication position. The crash windows mirror Checkpoint's: the new
// generation records which local log (and how much of it) it supersedes, so
// recovery between the snapshot write and the log truncation skips the
// superseded batches and completes the truncation.
//
//ssd:locks writeMu
func (db *Database) ReplaceFromSnapshot(s *storage.Snapshot) error {
	if db.dir == "" {
		return fmt.Errorf("core: database was not opened with OpenPath")
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.wal == nil {
		return fmt.Errorf("core: database is closed")
	}
	folded := db.wal.Batches()
	seq := db.snapSeq.Load() + 1
	// Persist under this directory's own log coordinates: the local log's
	// every batch is superseded by the incoming state, which is precisely
	// what WALBaseFP+Applied express to recovery.
	persisted := *s
	persisted.WALBaseFP = db.wal.BaseFingerprint()
	persisted.Applied = uint64(folded)
	path := filepath.Join(db.dir, snapName(seq))
	if _, err := storage.WriteSnapshotFile(path, &persisted); err != nil {
		return err
	}
	if err := db.wal.TruncatePrefix(folded, persisted.SelfFP); err != nil {
		return fmt.Errorf("core: bootstrap snapshot %s written but log truncation failed: %w", path, err)
	}
	db.snapSeq.Store(seq)
	db.pruneSnapshots(seq)
	db.snap.Store(&snapshot{
		g: s.Graph, labelIx: s.Labels, valueIx: s.Values, guide: s.Guide, stats: s.Stats,
	})
	db.invalidateStmtPlans()
	db.setSeq(s.CommitSeq)
	obsCkptGen.Set(int64(seq))
	return nil
}
