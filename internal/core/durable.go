package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"repro/internal/mutate"
	"repro/internal/ssd"
	"repro/internal/storage"
)

// This file is the durable face of a Database: a directory holding
// checkpointed snapshot generations plus one write-ahead log.
//
//	dir/
//	  snap-<seq>.ssds   snapshot generations (storage snapshot format)
//	  wal.log           the WAL, bound by fingerprint to one generation
//
// OpenPath recovers the newest valid generation and replays only the log
// tail past it; Checkpoint writes the next generation from a pinned MVCC
// snapshot — without blocking readers or the writer — and then truncates
// exactly the log prefix the new generation folded in, under the writer
// lock, so a commit can never land between snapshot publish and log
// truncation and be silently dropped.
//
// Crash matrix (why every window is safe):
//
//   - during snapshot write: the temp file never got renamed; OpenPath
//     ignores it and recovers from the previous generation + the full log.
//   - between rename and truncation: the newest snapshot names the log's
//     old binding (WALBaseFP) and how many of its batches it already holds
//     (Applied); OpenPath skips that prefix, replays the tail, and
//     completes the interrupted truncation.
//   - during log truncation: the rewrite goes through temp+rename, so the
//     log is either still the old one (previous case) or fully truncated.
//   - after truncation: the normal case — snapshot fingerprint and log
//     binding agree; replay everything in the log.

const (
	walFile    = "wal.log"
	lockFile   = "LOCK"
	snapSuffix = ".ssds"
	pageSuffix = ".ssdp"
)

// lockDir takes the directory's advisory lock (flock on dir/LOCK,
// non-blocking). Exactly one process may hold a durable directory open:
// two writers appending to one log at independent offsets would interleave
// frames into a tail the next open silently truncates, and a checkpoint in
// one process would rewrite the log out from under the other. The lock is
// released by closing the returned file (CloseWAL, or process death — so
// a crash never leaves a stale lock).
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("core: %s is in use by another process: %w", dir, err)
	}
	return f, nil
}

func snapName(seq uint64) string { return fmt.Sprintf("snap-%016d%s", seq, snapSuffix) }

// pageName is the DFS-clustered page image derived from snap-<seq>.ssds —
// same sequence number, page-store format (see storage.WritePageFile).
func pageName(seq uint64) string { return fmt.Sprintf("pages-%016d%s", seq, pageSuffix) }

// snapFile is one snapshot generation found on disk.
type snapFile struct {
	path string
	seq  uint64
}

// snapshotFiles lists the snapshot generations in dir, newest first.
// Temp files from interrupted writes do not match and are ignored.
func snapshotFiles(dir string) ([]snapFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []snapFile
	for _, e := range ents {
		name := e.Name()
		var seq uint64
		if n, err := fmt.Sscanf(name, "snap-%d"+snapSuffix, &seq); n != 1 || err != nil {
			continue
		}
		if name != snapName(seq) { // reject snap-1.ssds.tmp-style stragglers
			continue
		}
		out = append(out, snapFile{path: filepath.Join(dir, name), seq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	return out, nil
}

// PathInitialized reports whether dir already holds a durable database —
// a snapshot generation or a write-ahead log. Serving layers use it to
// decide between seeding a fresh directory (SavePath) and opening an
// existing one (OpenPath).
func PathInitialized(dir string) (bool, error) {
	cands, err := snapshotFiles(dir)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if len(cands) > 0 {
		return true, nil
	}
	if _, err := os.Stat(filepath.Join(dir, walFile)); err == nil {
		return true, nil
	}
	return false, nil
}

// RecoveryInfo reports what OpenPath recovered: which snapshot generation
// seeded the database, how many logged batches were already part of it
// (skipped), and how many were replayed on top — the probe recovery tests
// use to assert that a restart after a checkpoint pays only for the tail.
type RecoveryInfo struct {
	SnapshotPath string // "" when the directory had no snapshot yet
	SnapshotSeq  uint64
	Skipped      int // batches dropped: already folded into the snapshot
	Replayed     int // batches applied on top of the snapshot
}

// Options configures OpenPathOptions.
type Options struct {
	// PoolBytes > 0 opens the database out-of-core: read paths go through a
	// paged store over the generation's DFS-clustered page file
	// (pages-<seq>.ssdp, rebuilt from the recovered graph when missing or
	// torn), with a buffer pool holding at most about PoolBytes of decoded
	// pages. 0 keeps the classic all-in-memory read path.
	PoolBytes int64
}

// OpenPath opens (creating if necessary) a durable database directory. It
// loads the newest snapshot generation that decodes cleanly — falling back
// past torn or corrupt files to the previous generation — then opens the
// WAL and replays only the batches past the snapshot. A brand-new
// directory starts as an empty database whose first commit is durable
// immediately.
//
// The returned database logs every Commit to the directory's WAL; call
// Checkpoint (or let a serving layer's background checkpointer do it) to
// bound the log and the next open's replay work.
func OpenPath(dir string) (*Database, error) { return OpenPathOptions(dir, Options{}) }

// OpenPathOptions is OpenPath with explicit options (see Options).
//
// With PoolBytes set, the recovered state must coincide with an on-disk
// generation before the page file can serve reads: when the WAL replayed a
// tail (or the directory had no generation yet), a checkpoint is cut first,
// which also writes the matching page image. Page images follow checkpoints
// from then on — a commit publishes an un-paged snapshot (its reads fall
// back to the in-memory graph), and the next Checkpoint re-binds.
func OpenPathOptions(dir string, opts Options) (*Database, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	opened := false
	defer func() {
		if !opened {
			lock.Close()
		}
	}()
	cands, err := snapshotFiles(dir)
	if err != nil {
		return nil, err
	}
	var (
		snap     *storage.Snapshot
		loaded   snapFile
		firstErr error
	)
	for _, c := range cands {
		s, err := storage.ReadSnapshotFile(c.path)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", c.path, err)
			}
			continue
		}
		snap, loaded = s, c
		break
	}
	if snap == nil && len(cands) > 0 {
		// Every generation is damaged: recovering as an empty database
		// would quietly discard the data, so refuse.
		return nil, fmt.Errorf("core: no valid snapshot in %s (newest: %v)", dir, firstErr)
	}
	if snap == nil {
		g := ssd.New()
		fp := mutate.Fingerprint(g)
		snap = &storage.Snapshot{Graph: g, SelfFP: fp, WALBaseFP: fp}
	}

	w, matched, err := mutate.OpenWALMatching(filepath.Join(dir, walFile), snap.SelfFP, snap.WALBaseFP)
	if err != nil {
		return nil, err
	}
	skipped := 0
	if matched != snap.SelfFP {
		// The log is still bound to the snapshot's base: a crash interrupted
		// the last checkpoint between snapshot rename and log truncation.
		// The snapshot's first Applied batches are already folded in — skip
		// them and complete the truncation.
		if w.Batches() < int(snap.Applied) {
			w.Close()
			return nil, fmt.Errorf("core: %s: snapshot folds %d batches but log holds %d",
				dir, snap.Applied, w.Batches())
		}
		//ssd:nolock writeMu: OpenPath recovery runs before the Database is published; no other goroutine can hold a reference, so the writer lock does not exist yet
		if err := w.TruncatePrefix(int(snap.Applied), snap.SelfFP); err != nil {
			w.Close()
			return nil, err
		}
		skipped = int(snap.Applied)
	}

	// Replay the tail in place, maintaining the restored derived structures
	// incrementally so recovery hands back a query-ready snapshot.
	g := snap.Graph
	labelIx, valueIx, guide, st := snap.Labels, snap.Values, snap.Guide, snap.Stats
	replayed := 0
	if w.Batches() > 0 {
		if err := w.Replay(func(b *mutate.Batch) error {
			res, err := mutate.ApplyInPlace(g, b)
			if err != nil {
				return err
			}
			replayed++
			if labelIx != nil {
				labelIx = labelIx.Apply(res.Delta)
			}
			if valueIx != nil {
				valueIx = valueIx.Apply(res.Delta)
			}
			if st != nil {
				st = st.Apply(res.Delta)
			}
			if guide != nil {
				if res.RootChanged {
					guide = nil
				} else if ng, ok := guide.ApplyDelta(g, res.Delta, 0); ok {
					guide = ng
				} else {
					guide = nil // deletes in the accessible region: rebuild lazily
				}
			}
			return nil
		}); err != nil {
			w.Close()
			return nil, err
		}
	}

	db := &Database{dir: dir, dirLock: lock, poolBytes: opts.PoolBytes}
	// Restore the replication position: the snapshot's persisted commit
	// count plus the tail replayed on top of it. Skipped batches are already
	// inside snap.CommitSeq — they were folded before the crash.
	db.replSeq.Store(snap.CommitSeq + uint64(replayed))
	obsCommitSeq.Set(int64(snap.CommitSeq + uint64(replayed)))
	db.snapSeq.Store(loaded.seq)
	db.snap.Store(&snapshot{g: g, labelIx: labelIx, valueIx: valueIx, guide: guide, stats: st})
	db.wal = w
	db.walRO.Store(w)
	opened = true
	db.recovery = RecoveryInfo{
		SnapshotPath: loaded.path,
		SnapshotSeq:  loaded.seq,
		Skipped:      skipped,
		Replayed:     replayed,
	}
	obsRecoveryReplayed.Set(int64(replayed))
	obsRecoverySkipped.Set(int64(skipped))
	obsCkptGen.Set(int64(loaded.seq))

	if opts.PoolBytes > 0 {
		if replayed > 0 || loaded.seq == 0 {
			// The recovered state is ahead of (or absent from) every on-disk
			// generation, so no page image can describe it. Cut a generation
			// now; its page-image hook binds the store.
			if _, err := db.Checkpoint(); err != nil {
				db.CloseWAL()
				return nil, err
			}
		} else if err := db.bindPageStore(db.snapshot(), loaded.seq); err != nil {
			db.CloseWAL()
			return nil, err
		}
	}
	return db, nil
}

// bindPageStore opens (rebuilding when missing or torn) the page image of
// generation seq and binds it to snap. snap must not be published to readers
// yet, or must be republished by the caller — the field is construction-only.
func (db *Database) bindPageStore(snap *snapshot, seq uint64) error {
	path := filepath.Join(db.dir, pageName(seq))
	ps, err := storage.OpenPageFile(path, db.poolBytes)
	if err != nil {
		// Missing or damaged page image (older directory layout, torn write):
		// it derives deterministically from the snapshot, so rebuild it.
		if err := storage.WritePageFile(path, snap.g, storage.ClusterDFS, storage.DefaultPageSize); err != nil {
			return fmt.Errorf("core: rebuilding page image %s: %w", path, err)
		}
		if ps, err = storage.OpenPageFile(path, db.poolBytes); err != nil {
			return err
		}
	}
	snap.paged = ps
	db.writeMu.Lock()
	db.pageStores = append(db.pageStores, ps)
	db.writeMu.Unlock()
	return nil
}

// LastRecovery reports what OpenPath recovered. Zero for databases not
// opened from a durable directory.
func (db *Database) LastRecovery() RecoveryInfo { return db.recovery }

// SnapshotSeq returns the newest snapshot generation on disk — the durable
// log position health endpoints report. 0 for non-durable databases and
// for durable directories that have not checkpointed yet. Safe to call
// concurrently with Checkpoint.
func (db *Database) SnapshotSeq() uint64 { return db.snapSeq.Load() }

// Durable reports whether the database is backed by a durable directory
// (opened with OpenPath) and therefore supports Checkpoint.
func (db *Database) Durable() bool { return db.dir != "" }

// WALSize returns the current size in bytes of the open write-ahead log
// (0 without one) — the figure size-threshold checkpoint triggers and
// /healthz watch. Lock-free: it must stay responsive while a checkpoint's
// log truncation holds the writer lock.
func (db *Database) WALSize() int64 {
	w := db.walRO.Load()
	if w == nil {
		return 0
	}
	return w.Size()
}

// CheckpointInfo describes one completed checkpoint.
type CheckpointInfo struct {
	Path      string // snapshot file written (or current, when NoOp)
	Seq       uint64 // its generation number
	Bytes     int64  // its size (0 when NoOp)
	Truncated int    // WAL batches folded in and removed from the log
	// NoOp reports that nothing was written: a generation already exists
	// and no batches have been committed since it was taken.
	NoOp bool
}

// Checkpoint writes the next snapshot generation and truncates the log
// prefix it covers. The expensive part — serializing the pinned MVCC
// snapshot with its indexes and DataGuide to a temp file and renaming it
// in — runs without any lock the read or write paths take: readers keep
// streaming and the single writer keeps committing throughout. Only two
// brief windows take the writer lock: pinning (snapshot pointer + log
// position must be read consistently) and the final log truncation, which
// removes exactly the prefix the new generation folded in, so commits that
// landed during serialization survive in the tail.
//
// Checkpoints are serialized with each other; concurrent calls queue.
//
//ssd:locks writeMu
func (db *Database) Checkpoint() (CheckpointInfo, error) {
	if db.dir == "" {
		return CheckpointInfo{}, fmt.Errorf("core: database was not opened with OpenPath")
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()

	db.writeMu.Lock()
	if db.wal == nil {
		db.writeMu.Unlock()
		return CheckpointInfo{}, fmt.Errorf("core: database is closed")
	}
	snap := db.snapshot()
	folded := db.wal.Batches()
	baseFP := db.wal.BaseFingerprint()
	// Under the writer lock, every logged batch is in the log: the pinned
	// snapshot's replication position is exactly the current commit count.
	commitSeq := db.replSeq.Load()
	db.writeMu.Unlock()

	if cur := db.snapSeq.Load(); folded == 0 && cur > 0 {
		// Nothing committed since the newest generation: rewriting an
		// identical snapshot (and its indexes) would be pure I/O. An idle
		// database checkpoints for free.
		return CheckpointInfo{
			Path: filepath.Join(db.dir, snapName(cur)),
			Seq:  cur,
			NoOp: true,
		}, nil
	}
	start := time.Now()

	// Force-build the linear-cost indexes and statistics so the generation
	// restores a query-ready database; the DataGuide (potentially
	// exponential) is included only if this snapshot already built it.
	labels := snap.labels()
	values := snap.values()
	st := snap.statistics()
	snap.mu.Lock()
	guide := snap.guide
	snap.mu.Unlock()

	seq := db.snapSeq.Load() + 1
	path := filepath.Join(db.dir, snapName(seq))
	s := &storage.Snapshot{
		Graph:     snap.g,
		Labels:    labels,
		Values:    values,
		Guide:     guide,
		Stats:     st,
		WALBaseFP: baseFP,
		Applied:   uint64(folded),
		CommitSeq: commitSeq,
	}
	n, err := storage.WriteSnapshotFile(path, s)
	if err != nil {
		return CheckpointInfo{}, err
	}

	// The generation is durable; now drop its prefix from the log. Under
	// the writer lock: a commit must either be in the folded prefix (it
	// was, by the pin) or survive in the tail — never vanish in between.
	db.writeMu.Lock()
	err = db.wal.TruncatePrefix(folded, s.SelfFP)
	db.writeMu.Unlock()
	if err != nil {
		return CheckpointInfo{}, fmt.Errorf("core: checkpoint %s written but log truncation failed: %w", path, err)
	}
	db.snapSeq.Store(seq)
	db.pruneSnapshots(seq)
	obsCkptDur.Observe(time.Since(start))
	obsCkpts.Inc()
	obsCkptGen.Set(int64(seq))
	info := CheckpointInfo{Path: path, Seq: seq, Bytes: n, Truncated: folded}
	if db.poolBytes > 0 {
		// Out-of-core mode: derive the generation's page image and rebind the
		// read path to it. The checkpoint itself is already durable; a page-
		// image failure is reported but costs only the paged read path until
		// the next checkpoint.
		if err := db.republishPaged(snap, seq); err != nil {
			return info, fmt.Errorf("core: checkpoint %s written but page image failed: %w", path, err)
		}
	}
	return info, nil
}

// republishPaged writes generation seq's page image from the pinned
// checkpoint snapshot, opens a page store over it, and republishes the
// snapshot page-backed. Publishing a NEW snapshot (same graph and derived
// structures, store bound at construction) rather than mutating the old one
// keeps snapshots immutable: plan pools are keyed by snapshot pointer, so no
// pool can ever hold plans compiled against two different stores for one
// snapshot. Skipped without error when writers advanced past the pinned
// snapshot — the image would describe a superseded state; the next
// checkpoint tries again.
func (db *Database) republishPaged(snap *snapshot, seq uint64) error {
	if db.snapshot() != snap {
		return nil // cheap early-out before paying the file write
	}
	path := filepath.Join(db.dir, pageName(seq))
	if err := storage.WritePageFile(path, snap.g, storage.ClusterDFS, storage.DefaultPageSize); err != nil {
		return err
	}
	ps, err := storage.OpenPageFile(path, db.poolBytes)
	if err != nil {
		return err
	}
	db.writeMu.Lock()
	if db.snapshot() != snap {
		db.writeMu.Unlock()
		ps.Close() // a commit won the race; its state is ahead of this image
		return nil
	}
	ns := &snapshot{g: snap.g, paged: ps}
	snap.mu.Lock()
	ns.labelIx, ns.valueIx, ns.guide, ns.stats = snap.labelIx, snap.valueIx, snap.guide, snap.stats
	snap.mu.Unlock()
	db.pageStores = append(db.pageStores, ps)
	db.snap.Store(ns)
	db.writeMu.Unlock()
	db.invalidateStmtPlans()
	return nil
}

// pruneSnapshots removes generations older than the previous one. The
// previous generation is kept as the fallback for a torn newest file;
// anything older can never be chosen by OpenPath while a newer valid one
// exists. Best-effort: a prune failure only costs disk.
func (db *Database) pruneSnapshots(cur uint64) {
	ents, err := os.ReadDir(db.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		var seq uint64
		switch {
		case scanSeq(name, "snap-%d"+snapSuffix, &seq) && name == snapName(seq):
		case scanSeq(name, "pages-%d"+pageSuffix, &seq) && name == pageName(seq):
			// Page images prune on the same schedule as their snapshots. An
			// open PageStore over a removed file keeps working (the inode
			// lives until the handle closes); only the directory entry goes.
		default:
			continue
		}
		if seq+1 < cur {
			os.Remove(filepath.Join(db.dir, name))
		}
	}
}

func scanSeq(name, format string, seq *uint64) bool {
	n, err := fmt.Sscanf(name, format, seq)
	return n == 1 && err == nil
}

// SavePath exports the database's current snapshot as the first generation
// of a new durable directory — the bridge from the in-memory loaders
// (ParseText, Open, FromGraph) to OpenPath. It refuses a directory that
// already holds a snapshot or log: merging histories silently could orphan
// the existing log's commits.
func (db *Database) SavePath(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cands, err := snapshotFiles(dir)
	if err != nil {
		return err
	}
	if len(cands) > 0 {
		return fmt.Errorf("core: %s already holds snapshot generations", dir)
	}
	if _, err := os.Stat(filepath.Join(dir, walFile)); err == nil {
		return fmt.Errorf("core: %s already holds a write-ahead log", dir)
	}
	snap := db.snapshot()
	labels := snap.labels()
	values := snap.values()
	st := snap.statistics()
	snap.mu.Lock()
	guide := snap.guide
	snap.mu.Unlock()
	fp := mutate.Fingerprint(snap.g)
	s := &storage.Snapshot{
		Graph:     snap.g,
		Labels:    labels,
		Values:    values,
		Guide:     guide,
		Stats:     st,
		WALBaseFP: fp, // fresh directory: the log will start at this state
	}
	_, err = storage.WriteSnapshotFile(filepath.Join(dir, snapName(1)), s)
	return err
}
