package repro

// Cross-module integration tests: the paper presents several computational
// strategies for the same class of queries (path expressions, the
// select-from-where language, graph datalog, structural recursion). These
// tests pose one question to multiple engines and require identical
// answers, plus end-to-end flows across codecs, schemas and guides.

import (
	"sort"
	"testing"

	"repro/internal/bisim"
	"repro/internal/core"
	"repro/internal/dataguide"
	"repro/internal/datalog"
	"repro/internal/decomp"
	"repro/internal/pathexpr"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/ssd"
	"repro/internal/storage"
	"repro/internal/unql"
	"repro/internal/workload"
)

// TestThreeEnginesAgree asks "which nodes carry a given string edge" via
// path expressions, the query language, and datalog.
func TestThreeEnginesAgree(t *testing.T) {
	g := workload.Movies(workload.DefaultMovieConfig(500))

	// 1. Path expression: nodes with an outgoing "Bogart" edge are the
	// parents of `_*."Bogart"` hits; bind them directly in the query
	// language instead to make the three results comparable.
	au := pathexpr.MustCompile(`_*."Bogart"`)
	viaPath := map[ssd.NodeID]bool{}
	// Parent reconstruction: any node with a "Bogart" out-edge that is
	// reachable. Use the automaton hits' predecessors via a scan.
	hits := au.Eval(g, g.Root())
	hitSet := map[ssd.NodeID]bool{}
	for _, h := range hits {
		hitSet[h] = true
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, e := range g.Out(ssd.NodeID(v)) {
			if e.Label.Equal(ssd.Str("Bogart")) && hitSet[e.To] {
				viaPath[ssd.NodeID(v)] = true
			}
		}
	}

	// 2. Query language.
	q := query.MustParse(`select X from DB._* X where X = "Bogart"`)
	rows, err := query.EvalRows(q, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	viaQuery := map[ssd.NodeID]bool{}
	for _, r := range rows {
		viaQuery[r.Trees["X"]] = true
	}

	// 3. Datalog.
	prog := datalog.MustParseProgram(`
		reach(X) :- root(X).
		reach(Y) :- reach(X), edge(X, _, Y).
		holder(X) :- reach(X), edge(X, "Bogart", _).`)
	rels, err := datalog.NewEngine(g).Run(prog, datalog.SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	viaDatalog := map[ssd.NodeID]bool{}
	for _, tup := range rels["holder"].Tuples() {
		viaDatalog[tup[0].Node] = true
	}

	if !sameNodeSet(viaPath, viaQuery) {
		t.Errorf("path (%d) and query (%d) disagree", len(viaPath), len(viaQuery))
	}
	if !sameNodeSet(viaQuery, viaDatalog) {
		t.Errorf("query (%d) and datalog (%d) disagree", len(viaQuery), len(viaDatalog))
	}
}

func sameNodeSet(a, b map[ssd.NodeID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for n := range a {
		if !b[n] {
			return false
		}
	}
	return true
}

// TestReachabilityFourWays computes the reachable node count via graph
// traversal, datalog, path expressions, and decomposition.
func TestReachabilityFourWays(t *testing.T) {
	g := workload.Web(workload.WebConfig{Pages: 400, OutLinks: 3, Seed: 3})
	acc, _ := g.Accessible()
	want := acc.NumNodes()

	au := pathexpr.MustCompile("_*")
	if got := len(au.Eval(g, g.Root())); got != want {
		t.Errorf("path _*: %d, want %d", got, want)
	}

	rels, err := datalog.NewEngine(g).Run(datalog.MustParseProgram(`
		reach(X) :- root(X).
		reach(Y) :- reach(X), edge(X, _, Y).`), datalog.SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if got := rels["reach"].Len(); got != want {
		t.Errorf("datalog: %d, want %d", got, want)
	}

	p := decomp.PartitionBFS(g, 4)
	if got := len(decomp.Eval(g, pathexpr.MustCompile("_*"), p, true)); got != want {
		t.Errorf("decomposed: %d, want %d", got, want)
	}
}

// TestRestructureThenQuery chains structural recursion with the query
// language: after collapsing Credit, the uniform query finds all actors.
func TestRestructureThenQuery(t *testing.T) {
	g := workload.Fig1(false)
	flat := unql.CollapseEdges(g, pathexpr.ExactPred{L: ssd.Sym("Credit")})
	q := query.MustParse(`
		select {Name: %N}
		from DB.Entry.Movie.Cast.(isint|Actors)? C, C.%N L
		where isstring(%N)`)
	res, err := query.Eval(q, flat)
	if err != nil {
		t.Fatal(err)
	}
	want := ssd.MustParse(`{Name: {"Bogart"}, Name: {"Bacall"}, Name: {"Allen"}}`)
	if !bisim.Equal(res, want) {
		t.Errorf("got %s", ssd.FormatRoot(res))
	}
}

// TestPersistedDatabaseIdenticalBehaviour runs the same query before and
// after a binary save/load cycle.
func TestPersistedDatabaseIdenticalBehaviour(t *testing.T) {
	g := workload.Movies(workload.DefaultMovieConfig(300))
	path := t.TempDir() + "/db.ssdg"
	if err := storage.WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := storage.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	q := query.MustParse(`select T from DB.Entry.Movie M, M.Title T where exists M.References`)
	r1, err := query.Eval(q, g)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := query.Eval(q, g2)
	if err != nil {
		t.Fatal(err)
	}
	if !bisim.Equal(r1, r2) {
		t.Error("persisted database answers differently")
	}
}

// TestGuideSchemaConsistency: data conforms to its inferred schema, the
// guide evaluates queries identically to the data, and pruning the query by
// the inferred schema changes nothing.
func TestGuideSchemaConsistency(t *testing.T) {
	g := workload.Movies(workload.DefaultMovieConfig(400))
	s := schema.Infer(g)
	if !s.Conforms(g) {
		t.Fatal("inferred schema must accept its own data")
	}
	guide := dataguide.MustBuild(g)
	for _, src := range []string{
		"Entry.Movie.Title._",
		"Entry._.Cast.(isint|Credit.Actors|Special-Guests)._",
	} {
		direct := pathexpr.MustCompile(src).Eval(g, g.Root())
		viaGuide := guide.Eval(pathexpr.MustCompile(src))
		pruned := s.Prune(pathexpr.MustCompile(src)).Eval(g, g.Root())
		if !equalNodes(direct, viaGuide) {
			t.Errorf("%s: guide disagrees", src)
		}
		if !equalNodes(direct, pruned) {
			t.Errorf("%s: schema-pruned disagrees", src)
		}
	}
}

func equalNodes(a, b []ssd.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOEMExchangePreservesQueries: exporting through the facade and
// re-importing leaves query answers unchanged (the §1.2 exchange claim).
func TestOEMExchangePreservesQueries(t *testing.T) {
	rdb := workload.Relational(50, 8, 1)
	db := core.ImportRelational(rdb)
	back, err := db.ExportRelational()
	if err != nil {
		t.Fatal(err)
	}
	db2 := core.ImportRelational(back)
	if !db.Equal(db2) {
		t.Error("import∘export∘import is not the identity on values")
	}
}
