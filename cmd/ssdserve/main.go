// Command ssdserve serves a semistructured database over HTTP/JSON: the
// network front door to the query engine.
//
// Usage:
//
//	ssdserve -db movie.ssdg [-wal movie.wal] [-addr :8080] [-parallelism 4]
//	ssdserve -demo 5000                       # serve a generated movie DB
//
// Endpoints (see internal/server):
//
//	POST /query    {"query": "...", "params": {...}, "timeout_ms": 1000}
//	               → NDJSON rows, one {"row": {...}} per line, terminated
//	               by {"done": true, "rows": N} or {"error": "..."}
//	POST /mutate   mutation script (ssdq format) → one committed batch
//	GET  /healthz  liveness + snapshot stats
//
// Example:
//
//	curl -s localhost:8080/query -d '{
//	  "query": "select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = $who",
//	  "params": {"who": "\"Allen\""}
//	}'
//
// SIGINT/SIGTERM triggers graceful shutdown: new requests get 503, and the
// process exits once every in-flight cursor drains (bounded by -grace).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		dbPath      = flag.String("db", "", "database file (storage binary format)")
		text        = flag.String("text", "", "database file in the text syntax (alternative to -db)")
		walPath     = flag.String("wal", "", "write-ahead log to attach (replays, then logs commits)")
		demo        = flag.Int("demo", 0, "serve a generated movie database with this many entries instead of a file")
		parallelism = flag.Int("parallelism", 0, "intra-query parallel workers (0/1 = serial)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-request timeout (0 = none)")
		maxTimeout  = flag.Duration("max-timeout", 5*time.Minute, "cap on per-request timeout_ms (0 = uncapped)")
		maxRows     = flag.Int("max-rows", 0, "cap on rows streamed per request (0 = unlimited)")
		grace       = flag.Duration("grace", 30*time.Second, "shutdown drain deadline")
	)
	flag.Parse()

	db, err := openDatabase(*dbPath, *text, *demo)
	if err != nil {
		log.Fatalf("ssdserve: %v", err)
	}
	if *walPath != "" {
		if err := db.OpenWAL(*walPath); err != nil {
			log.Fatalf("ssdserve: open WAL: %v", err)
		}
		defer db.CloseWAL()
	}

	srv := server.New(db, server.Config{
		Parallelism:    *parallelism,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxRows:        *maxRows,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("ssdserve: shutting down (grace %s)", *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		// Stop admitting and drain cursors first, then close connections.
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("ssdserve: drain: %v", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("ssdserve: http shutdown: %v", err)
		}
	}()

	log.Printf("ssdserve: serving %s on %s (parallelism %d)", db.Describe(), *addr, db.Parallelism())
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ssdserve: %v", err)
	}
	<-done
}

func openDatabase(dbPath, text string, demo int) (*core.Database, error) {
	switch {
	case demo > 0:
		return core.FromGraph(workload.Movies(workload.DefaultMovieConfig(demo))), nil
	case dbPath != "":
		return core.Open(dbPath)
	case text != "":
		src, err := os.ReadFile(text)
		if err != nil {
			return nil, err
		}
		return core.ParseText(string(src))
	default:
		return nil, fmt.Errorf("one of -db, -text or -demo is required")
	}
}
