// Command ssdserve serves a semistructured database over HTTP/JSON: the
// network front door to the query engine.
//
// Usage:
//
//	ssdserve -data dbdir                      # durable: snapshots + WAL in dbdir
//	ssdserve -data dbdir -demo 5000           # seed a fresh dbdir, then serve it
//	ssdserve -db movie.ssdg [-wal movie.wal] [-addr :8080] [-parallelism 4]
//	ssdserve -demo 5000                       # serve a generated movie DB (volatile)
//	ssdserve -data repdir -follow http://leader:8080   # read-only follower replica
//
// Endpoints (see internal/server):
//
//	POST /query      {"query": "...", "params": {...}, "timeout_ms": 1000}
//	                 → NDJSON rows, one {"row": {...}} per line, terminated
//	                 by {"done": true, "rows": N} or {"error": "..."}
//	POST /mutate     mutation script (ssdq format) → one committed batch
//	POST /checkpoint force a durable checkpoint now (with -data)
//	GET  /healthz    liveness + snapshot stats + WAL size + stmt cache
//	GET  /metrics    process metrics (Prometheus text; ?format=json)
//
// Append ?trace=1 to /query to get the per-operator execution trace on the
// terminal status line. -slow-query logs any slower request with its trace;
// -debug-addr serves net/http/pprof and expvar on a separate listener.
//
// Example:
//
//	curl -s localhost:8080/query -d '{
//	  "query": "select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = $who",
//	  "params": {"who": "\"Allen\""}
//	}'
//
// With -data the database lives in a durable directory (core.OpenPath):
// every /mutate commit is WAL-logged, and a background checkpointer folds
// the log into a new snapshot generation every -checkpoint-interval or as
// soon as the log exceeds -checkpoint-max-wal bytes, whichever comes
// first — so a restart replays only the short WAL tail. Checkpoints run
// against a pinned MVCC snapshot: queries and mutations keep flowing while
// one is written. Seeding: if dbdir is empty and -db/-text/-demo names a
// source, the source becomes generation 1; once initialized, the directory
// itself is the single source of truth and the seed flags are rejected.
//
// With -follow the process runs as a read-only replica of another ssdserve:
// an uninitialized -data directory bootstraps itself from the leader's
// newest snapshot, then the follower applies the leader's committed WAL
// frames live (streamed over GET /replicate/wal), maintaining its own WAL,
// checkpoints and indexes. /query works (including X-SSD-Seq read-your-
// writes tokens — a tokened read waits for the replica to catch up or
// returns 503); /mutate and /checkpoint return 403 pointing at the leader.
// Any durable ssdserve is a leader: the /replicate endpoints are always on.
//
// SIGINT/SIGTERM triggers graceful shutdown: new requests get 503, the
// process exits once every in-flight cursor drains (bounded by -grace),
// and with -data a final checkpoint bounds the next start's replay.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/workload"
)

// buildLogger maps the -log-level flag to a text slog.Logger on stderr.
func buildLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

// serveDebug exposes net/http/pprof and expvar on their own address, kept
// off the main mux so profiling endpoints are never reachable through the
// public listener.
func serveDebug(addr string, logger *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	logger.Info("debug server listening", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("debug server failed", "err", err)
	}
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		dataDir      = flag.String("data", "", "durable database directory (snapshots + WAL); seeds from -db/-text/-demo when empty")
		dbPath       = flag.String("db", "", "database file (storage binary format)")
		text         = flag.String("text", "", "database file in the text syntax (alternative to -db)")
		walPath      = flag.String("wal", "", "write-ahead log to attach (replays, then logs commits)")
		demo         = flag.Int("demo", 0, "serve a generated movie database with this many entries instead of a file")
		parallelism  = flag.Int("parallelism", 0, "intra-query parallel workers (0/1 = serial)")
		timeout      = flag.Duration("timeout", 30*time.Second, "default per-request timeout (0 = none)")
		maxTimeout   = flag.Duration("max-timeout", 5*time.Minute, "cap on per-request timeout_ms (0 = uncapped)")
		maxRows      = flag.Int("max-rows", 0, "cap on rows streamed per request (0 = unlimited)")
		grace        = flag.Duration("grace", 30*time.Second, "shutdown drain deadline")
		ckptInterval = flag.Duration("checkpoint-interval", 5*time.Minute, "with -data: background checkpoint timer (0 = off)")
		ckptMaxWAL   = flag.Int64("checkpoint-max-wal", 64<<20, "with -data: checkpoint when the WAL exceeds this many bytes (0 = off)")
		logLevel     = flag.String("log-level", "info", "structured log level: debug, info, warn or error")
		slowQuery    = flag.Duration("slow-query", 0, "log queries at or over this latency, with their trace (0 = off)")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060); empty = off")
		poolBytes    = flag.Int64("pool-bytes", 0, "with -data: serve reads through an on-disk page file with a buffer pool of this many bytes (0 = all in memory)")
		follow       = flag.String("follow", "", "run as a read-only follower replicating from this leader base URL (requires -data)")
		replWait     = flag.Duration("repl-wait", server.DefaultReplWait, "how long a tokened read (X-SSD-Seq) waits for the replica to catch up before 503")
	)
	flag.Parse()

	logger, err := buildLogger(*logLevel)
	if err != nil {
		log.Fatalf("ssdserve: %v", err)
	}

	if *follow != "" {
		if *dataDir == "" {
			log.Fatalf("ssdserve: -follow requires -data: the replica needs a durable directory to bootstrap into")
		}
		if *dbPath != "" || *text != "" || *demo > 0 {
			log.Fatalf("ssdserve: -follow conflicts with -db/-text/-demo: a follower's state comes from its leader")
		}
		// First start of a fresh replica: seed the directory from the
		// leader's newest snapshot. An initialized directory resumes from
		// its own durable position instead.
		if err := server.BootstrapFollower(context.Background(), nil, *follow, *dataDir); err != nil {
			log.Fatalf("ssdserve: bootstrapping from %s: %v", *follow, err)
		}
	}

	db, err := openServeDatabase(*dataDir, *dbPath, *text, *walPath, *demo, *poolBytes)
	if err != nil {
		log.Fatalf("ssdserve: %v", err)
	}
	defer db.CloseWAL()

	cfg := server.Config{
		Parallelism:    *parallelism,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxRows:        *maxRows,
		Logger:         logger,
		SlowQuery:      *slowQuery,
		ReplWait:       *replWait,
	}
	if db.Durable() {
		cfg.CheckpointInterval = *ckptInterval
		cfg.CheckpointMaxWAL = *ckptMaxWAL
		cfg.Role = "leader"
	} else {
		cfg.Role = "single"
	}
	var follower *server.Follower
	followCtx, stopFollower := context.WithCancel(context.Background())
	defer stopFollower()
	if *follow != "" {
		follower = server.NewFollower(db, *follow, logger)
		cfg.ReadOnly = true
		cfg.Role = "follower"
		cfg.LeaderURL = *follow
		cfg.Follower = follower
	}
	srv := server.New(db, cfg)
	if follower != nil {
		go follower.Run(followCtx)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	if *debugAddr != "" {
		go serveDebug(*debugAddr, logger)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("ssdserve: shutting down (grace %s)", *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		// Stop replicating first so the final checkpoint folds a position
		// that will not advance again, then drain cursors, then close
		// connections.
		stopFollower()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("ssdserve: drain: %v", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("ssdserve: http shutdown: %v", err)
		}
		if db.Durable() {
			// Fold the WAL tail into a final generation so the next start
			// replays (nearly) nothing.
			if info, err := db.Checkpoint(); err != nil {
				log.Printf("ssdserve: final checkpoint: %v", err)
			} else {
				log.Printf("ssdserve: final checkpoint: generation %d (%d batches folded)",
					info.Seq, info.Truncated)
			}
		}
	}()

	log.Printf("ssdserve: serving %s on %s (parallelism %d)", db.Describe(), *addr, db.Parallelism())
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ssdserve: %v", err)
	}
	<-done
}

// openServeDatabase resolves the flag combinations to one database. With
// -data, the directory is authoritative: a fresh one may be seeded from
// -db/-text/-demo, an initialized one rejects them (serving a file over an
// existing durable history would silently fork it).
func openServeDatabase(dataDir, dbPath, text, walPath string, demo int, poolBytes int64) (*core.Database, error) {
	if dataDir == "" {
		if poolBytes > 0 {
			return nil, fmt.Errorf("-pool-bytes requires -data: the page file lives in the durable directory")
		}
		db, err := openDatabase(dbPath, text, demo)
		if err != nil {
			return nil, err
		}
		if walPath != "" {
			if err := db.OpenWAL(walPath); err != nil {
				return nil, fmt.Errorf("open WAL: %w", err)
			}
		}
		return db, nil
	}
	if walPath != "" {
		return nil, fmt.Errorf("-wal conflicts with -data: the directory has its own log")
	}
	initialized, err := core.PathInitialized(dataDir)
	if err != nil {
		return nil, err
	}
	hasSeed := dbPath != "" || text != "" || demo > 0
	if initialized && hasSeed {
		return nil, fmt.Errorf("-data %s is already initialized; drop -db/-text/-demo", dataDir)
	}
	if !initialized && hasSeed {
		seed, err := openDatabase(dbPath, text, demo)
		if err != nil {
			return nil, err
		}
		if err := seed.SavePath(dataDir); err != nil {
			return nil, err
		}
		log.Printf("ssdserve: seeded %s (%s)", dataDir, seed.Describe())
	}
	db, err := core.OpenPathOptions(dataDir, core.Options{PoolBytes: poolBytes})
	if err != nil {
		return nil, err
	}
	ri := db.LastRecovery()
	log.Printf("ssdserve: recovered %s: generation %d, %d batches skipped, %d replayed",
		dataDir, ri.SnapshotSeq, ri.Skipped, ri.Replayed)
	return db, nil
}

func openDatabase(dbPath, text string, demo int) (*core.Database, error) {
	switch {
	case demo > 0:
		return core.FromGraph(workload.Movies(workload.DefaultMovieConfig(demo))), nil
	case dbPath != "":
		return core.Open(dbPath)
	case text != "":
		src, err := os.ReadFile(text)
		if err != nil {
			return nil, err
		}
		return core.ParseText(string(src))
	default:
		return nil, fmt.Errorf("one of -data, -db, -text or -demo is required")
	}
}
