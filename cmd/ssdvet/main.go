// Command ssdvet machine-checks the engine's concurrency and resource
// invariants: the writer-lock protocol around the WAL, atomic-only access to
// snapshot-published fields, cursor Close/Err discipline, rev-cache
// invalidation ordering, and cancellation polling in pull loops.
//
// Usage:
//
//	go run ./cmd/ssdvet ./...
//	go run ./cmd/ssdvet -only lockcheck,closecheck ./internal/core
//
// The checks are driven by //ssd: annotations in doc comments (see
// internal/analysis for the grammar and ARCHITECTURE.md for the invariant
// catalogue). Exit status is 1 when any diagnostic is reported, 2 on load
// failure — the same contract as go vet, so it slots into CI as-is.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ssdvet [-only names] [-list] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := analysis.Suite(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssdvet:", err)
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssdvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssdvet:", err)
		os.Exit(2)
	}

	idx := analysis.BuildIndex(pkgs)
	findings := analysis.RunAnalyzers(pkgs, idx, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ssdvet: %d invariant violation(s)\n", len(findings))
		os.Exit(1)
	}
}
