// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout. CI uses it to publish each
// run's benchmark numbers as an artifact (BENCH_pr5.json) that later runs
// and external dashboards can consume without re-parsing the text format.
//
//	go test -run=NONE -bench=. -benchtime=3x -count=3 . | benchjson > BENCH_pr5.json
//
// Repeated -count runs of one benchmark appear as separate entries, in
// order, so downstream tooling can compute its own dispersion statistics
// (benchstat remains the comparison tool of record in CI).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Run is one benchmark result line.
type Run struct {
	Name string `json:"name"`
	// Iters is the b.N the line reports.
	Iters int64 `json:"iters"`
	// Metrics maps unit → value, e.g. "ns/op": 123.4, "B/op": 456,
	// "allocs/op": 7, plus any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Run    `json:"benchmarks"`
	Failures   []string `json:"failures,omitempty"`
}

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse consumes go test benchmark output. Unrecognized lines (test chatter,
// PASS/ok trailers) are skipped; "--- FAIL"-style lines are collected so a
// failing benchmark run still yields a useful document.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Run{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if run, ok := parseRun(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, run)
			}
		case strings.HasPrefix(line, "--- FAIL") || line == "FAIL" || strings.HasPrefix(line, "FAIL\t"):
			rep.Failures = append(rep.Failures, line)
		}
	}
	return rep, sc.Err()
}

// parseRun parses one result line: name, iteration count, then value/unit
// pairs.
//
//	BenchmarkX/case-8   3   41558 ns/op   23112 B/op   170 allocs/op
func parseRun(line string) (Run, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Run{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Run{}, false
	}
	run := Run{Name: fields[0], Iters: iters, Metrics: make(map[string]float64, (len(fields)-2)/2)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Run{}, false
		}
		run.Metrics[fields[i+1]] = v
	}
	return run, true
}
