package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkPlannedVsNaive/planned-8         	       3	     41558 ns/op	   23112 B/op	     170 allocs/op
BenchmarkPlannedVsNaive/planned-8         	       3	     40912 ns/op	   23112 B/op	     170 allocs/op
BenchmarkPlannedVsNaive/naive-8           	       3	   1638273 ns/op	 1204512 B/op	   12007 allocs/op
BenchmarkParallelVsSerial/workers=2-8     	       3	    901221 ns/op
PASS
ok  	repro	4.201s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro" || rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header mismatch: %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d runs, want 4", len(rep.Benchmarks))
	}
	first := rep.Benchmarks[0]
	if first.Name != "BenchmarkPlannedVsNaive/planned-8" || first.Iters != 3 {
		t.Fatalf("first run = %+v", first)
	}
	if first.Metrics["ns/op"] != 41558 || first.Metrics["B/op"] != 23112 || first.Metrics["allocs/op"] != 170 {
		t.Fatalf("first run metrics = %v", first.Metrics)
	}
	// -count repetitions stay separate entries.
	if rep.Benchmarks[1].Name != first.Name || rep.Benchmarks[1].Metrics["ns/op"] != 40912 {
		t.Fatalf("second repetition = %+v", rep.Benchmarks[1])
	}
	// A line with only ns/op parses too.
	last := rep.Benchmarks[3]
	if len(last.Metrics) != 1 || last.Metrics["ns/op"] != 901221 {
		t.Fatalf("last run metrics = %v", last.Metrics)
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("unexpected failures: %v", rep.Failures)
	}
}

func TestParseCollectsFailures(t *testing.T) {
	rep, err := parse(strings.NewReader("--- FAIL: BenchmarkX\nFAIL\nFAIL\trepro\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 3 {
		t.Fatalf("failures = %v, want 3 lines", rep.Failures)
	}
}

func TestParseSkipsChatter(t *testing.T) {
	rep, err := parse(strings.NewReader("Benchmark output noise\nBenchmarkBad abc def\nrandom line\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("chatter parsed as runs: %+v", rep.Benchmarks)
	}
}
