package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeDoc(t *testing.T, name, body string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadMeansRepeatedRuns(t *testing.T) {
	p := writeDoc(t, "b.json", `{"benchmarks":[
		{"name":"BenchmarkPlannedVsNaive/x","iters":3,"metrics":{"ns/op":100}},
		{"name":"BenchmarkPlannedVsNaive/x","iters":3,"metrics":{"ns/op":300}},
		{"name":"BenchmarkOther","iters":1,"metrics":{"B/op":8}}
	]}`)
	means, err := load(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := means["BenchmarkPlannedVsNaive/x"]; got != 200 {
		t.Errorf("mean = %v, want 200", got)
	}
	// Entries without ns/op are not comparable and must be dropped.
	if _, ok := means["BenchmarkOther"]; ok {
		t.Error("metric-less benchmark survived load")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := load(writeDoc(t, "bad.json", `{"benchmarks":[]}`)); err == nil {
		t.Error("empty document accepted")
	}
	if _, err := load(writeDoc(t, "bad2.json", `not json`)); err == nil {
		t.Error("malformed document accepted")
	}
}

func TestMatches(t *testing.T) {
	prefixes := []string{"BenchmarkPlannedVsNaive", "BenchmarkParallelVsSerial"}
	for name, want := range map[string]bool{
		"BenchmarkPlannedVsNaive/planned/e1-path-heavy/entries=500-4": true,
		"BenchmarkParallelVsSerial/serial-4":                          true,
		"BenchmarkBrowsingScan-4":                                     false,
		"":                                                            false,
	} {
		if got := matches(name, prefixes); got != want {
			t.Errorf("matches(%q) = %v, want %v", name, got, want)
		}
	}
}
