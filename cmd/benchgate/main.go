// Command benchgate compares two benchjson documents and fails when any
// gated benchmark regressed beyond a threshold. CI runs it with a baseline
// measured in the same job on the same machine (the base ref rebuilt and
// benchmarked alongside HEAD), so a performance regression on the gated
// suites fails the build instead of merely showing up in a report artifact.
// Cross-machine comparisons (e.g. against the baseline document committed
// in the repository) are only meaningful as a trend report: run those with
// -warn, which prints the same verdicts but always exits 0, because
// machine-to-machine variance routinely exceeds any useful threshold.
//
//	benchgate -baseline bench-base.json -current bench-current.json
//	benchgate -warn -baseline BENCH_pr6.json -current bench-current.json
//
// Gated benchmarks are selected by name prefix (-match, comma-separated).
// For every gated name present in both documents, the mean ns/op across its
// repeated -count entries is compared; a current mean above
// baseline*(1+threshold) is a regression. Names present on only one side are
// reported but never fail the gate — benchmarks are added and retired as the
// code evolves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// run mirrors benchjson's Run; decoded loosely so the two commands do not
// need a shared package.
type run struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

type report struct {
	Benchmarks []run `json:"benchmarks"`
}

func main() {
	baseline := flag.String("baseline", "", "baseline benchjson document (required)")
	current := flag.String("current", "", "current benchjson document (required)")
	match := flag.String("match", "BenchmarkPlannedVsNaive,BenchmarkParallelVsSerial,BenchmarkInstrumentationOverhead,BenchmarkPagedVsInMemory",
		"comma-separated benchmark name prefixes to gate")
	threshold := flag.Float64("threshold", 0.15, "allowed fractional ns/op regression")
	warn := flag.Bool("warn", false, "report regressions but exit 0 (for cross-machine baselines)")
	flag.Parse()
	if *baseline == "" || *current == "" {
		flag.Usage()
		os.Exit(2)
	}

	base, err := load(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := load(*current)
	if err != nil {
		fatal(err)
	}
	prefixes := strings.Split(*match, ",")

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	gated := 0
	for _, name := range names {
		if !matches(name, prefixes) {
			continue
		}
		cm, ok := cur[name]
		if !ok {
			fmt.Printf("skip   %-60s not in current run\n", name)
			continue
		}
		gated++
		bm := base[name]
		ratio := cm / bm
		verdict := "ok"
		if ratio > 1+*threshold {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f ns/op -> %.0f ns/op (%+.1f%%)", name, bm, cm, (ratio-1)*100))
		}
		fmt.Printf("%-6s %-60s %12.0f -> %12.0f ns/op (%+.1f%%)\n", verdict, name, bm, cm, (ratio-1)*100)
	}
	for name := range cur {
		if matches(name, prefixes) {
			if _, ok := base[name]; !ok {
				fmt.Printf("new    %-60s not in baseline\n", name)
			}
		}
	}
	if gated == 0 {
		fatal(fmt.Errorf("no gated benchmarks matched %q in the baseline", *match))
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchgate: %d benchmark(s) regressed more than %.0f%%:\n", len(regressions), *threshold*100)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		if *warn {
			fmt.Fprintln(os.Stderr, "benchgate: -warn set, not failing (cross-machine baseline)")
			os.Exit(0)
		}
		os.Exit(1)
	}
	fmt.Printf("\nbenchgate: %d gated benchmark(s) within %.0f%% of baseline\n", gated, *threshold*100)
}

// load reads a benchjson document and returns mean ns/op per benchmark name.
func load(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	sum := map[string]float64{}
	n := map[string]int{}
	for _, r := range rep.Benchmarks {
		v, ok := r.Metrics["ns/op"]
		if !ok {
			continue
		}
		sum[r.Name] += v
		n[r.Name]++
	}
	means := make(map[string]float64, len(sum))
	for name, s := range sum {
		means[name] = s / float64(n[name])
	}
	if len(means) == 0 {
		return nil, fmt.Errorf("%s: no benchmark entries with ns/op", path)
	}
	return means, nil
}

func matches(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if p != "" && strings.HasPrefix(name, strings.TrimSpace(p)) {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
