// Command ssdrouter fronts a replicated ssdserve tier: one leader (the
// single writer) plus any number of read-only follower replicas.
//
// Usage:
//
//	ssdrouter -leader http://127.0.0.1:8080 \
//	          -replicas http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	          [-addr :8079] [-health-interval 1s]
//
// Routing:
//
//	POST /query      → a healthy replica, round-robin; replicas already at
//	                   or past the request's X-SSD-Seq token are preferred,
//	                   and the leader is the fallback when no replica is
//	                   usable. A failed backend is retried on the next.
//	POST /mutate     → the leader only. The response carries the commit's
//	POST /checkpoint   X-SSD-Seq token for read-your-writes.
//	GET  /healthz    → aggregate backend health and replication positions
//	GET  /metrics    → the router's own routing metrics
//
// Consistency is enforced by the backends: a replica behind a read's token
// waits (up to its -repl-wait) or answers 503 with Retry-After, so a stale
// router health view can delay a read but never serve stale data for a
// tokened request.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/server"
)

func main() {
	var (
		addr           = flag.String("addr", ":8079", "listen address")
		leader         = flag.String("leader", "", "leader base URL (required), e.g. http://127.0.0.1:8080")
		replicas       = flag.String("replicas", "", "comma-separated follower base URLs")
		healthInterval = flag.Duration("health-interval", server.DefaultHealthInterval, "backend health poll period")
		logLevel       = flag.String("log-level", "info", "structured log level: debug, info, warn or error")
	)
	flag.Parse()
	if *leader == "" {
		log.Fatalf("ssdrouter: -leader is required")
	}
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(strings.ToUpper(*logLevel))); err != nil {
		log.Fatalf("ssdrouter: bad -log-level %q: %v", *logLevel, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))

	var reps []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			reps = append(reps, strings.TrimRight(r, "/"))
		}
	}
	rt := server.NewRouter(server.RouterConfig{
		Leader:         strings.TrimRight(*leader, "/"),
		Replicas:       reps,
		HealthInterval: *healthInterval,
		Logger:         logger,
	})
	defer rt.Stop()
	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("ssdrouter: shutting down")
		httpSrv.Close()
	}()

	log.Printf("ssdrouter: routing %s on %s (leader %s, %d replicas)",
		fmt.Sprintf("%d backends", 1+len(reps)), *addr, *leader, len(reps))
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ssdrouter: %v", err)
	}
}
