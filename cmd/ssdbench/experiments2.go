package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/bisim"
	"repro/internal/dataguide"
	"repro/internal/decomp"
	"repro/internal/pathexpr"
	"repro/internal/schema"
	"repro/internal/ssd"
	"repro/internal/storage"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// E7: query decomposition across sites

func runE7Decomposition(scale int) {
	g := workload.Movies(workload.DefaultMovieConfig(30000 * scale))
	queries := []string{
		`_*."Bogart"`,
		"Entry._.Cast.(isint|Credit.Actors|Special-Guests)._",
	}
	t := newTable("query", "sites", "cross edges", "serial", "parallel", "speedup")
	fmt.Printf("  database: %d nodes, %d edges; GOMAXPROCS=%d\n\n",
		g.NumNodes(), g.NumEdges(), runtime.GOMAXPROCS(0))
	for _, src := range queries {
		base := pathexpr.MustCompile(src).Eval(g, g.Root())
		for _, k := range []int{1, 2, 4, 8} {
			p := decomp.PartitionBFS(g, k)
			var serial, parallel time.Duration
			var got []ssd.NodeID
			serial = timeBest(3, func() {
				got = decomp.Eval(g, pathexpr.MustCompile(src), p, false)
			})
			if len(got) != len(base) {
				panic("E7 serial mismatch")
			}
			parallel = timeBest(3, func() {
				got = decomp.Eval(g, pathexpr.MustCompile(src), p, true)
			})
			if len(got) != len(base) {
				panic("E7 parallel mismatch")
			}
			t.add(src, k, p.CrossEdges(g), serial, parallel, ratio(serial, parallel))
		}
	}
	t.print()
	fmt.Println("  expectation: near-linear parallel speedup while per-site work dominates;")
	fmt.Println("  gains flatten as cross-edge bookkeeping grows with the site count.")
}

// ---------------------------------------------------------------------------
// E8: schema-based pruning

func runE8SchemaPruning(scale int) {
	g := workload.Movies(workload.DefaultMovieConfig(20000 * scale))
	s := movieSchema()
	if !s.Conforms(g) {
		panic("E8: generated data must conform to the movie schema")
	}
	queries := []struct{ name, src string }{
		{"selective (TV only)", "Entry.TV-Show.Episode._"},
		{"impossible", "Entry.Movie.Budget._"},
		{"broad wildcard", `_*."Bogart"`},
		{"director values", "Entry._.Director._"},
	}
	t := newTable("query", "hits", "plain", "pruned", "speedup", "pruned states")
	for _, q := range queries {
		var plainHits, prunedHits int
		plainTime := timeBest(3, func() {
			plainHits = len(pathexpr.MustCompile(q.src).Eval(g, g.Root()))
		})
		pruned := s.Prune(pathexpr.MustCompile(q.src))
		prunedTime := timeBest(3, func() {
			prunedHits = len(s.Prune(pathexpr.MustCompile(q.src)).Eval(g, g.Root()))
		})
		if plainHits != prunedHits {
			panic(fmt.Sprintf("E8 mismatch on %s: %d vs %d", q.name, plainHits, prunedHits))
		}
		t.add(q.name, plainHits, plainTime, prunedTime, ratio(plainTime, prunedTime), pruned.NumStates())
	}
	t.print()
	fmt.Println("  expectation: pruning wins when the schema rules out branches (impossible")
	fmt.Println("  queries cost ~nothing); broad wildcards gain little.")
}

func movieSchema() *schema.Schema {
	return schema.MustParse(`
	{Entry: #e{Movie: {Title: {isstring},
	                   Cast: {isint: {isstring},
	                          Credit: {Actors: {isstring}}},
	                   Director: {isstring},
	                   References: #e,
	                   Is-referenced-in: #e},
	           TV-Show: {Title: {isstring},
	                     Cast: {Special-Guests: {isstring}},
	                     Episode: {isint},
	                     References: #e,
	                     Is-referenced-in: #e}}}`)
}

// ---------------------------------------------------------------------------
// E9: DataGuide construction cost

func runE9DataGuide(scale int) {
	t := newTable("workload", "nodes", "edges", "guide nodes", "build time", "ratio")
	add := func(name string, g *ssd.Graph) {
		var guide *dataguide.Guide
		var ok bool
		d := timeIt(func() { guide, ok = dataguide.Build(g, 2_000_000) })
		if !ok {
			t.add(name, g.NumNodes(), g.NumEdges(), ">2M (cap)", d, "-")
			return
		}
		t.add(name, g.NumNodes(), g.NumEdges(), guide.NumNodes(), d,
			fmt.Sprintf("%.3f", float64(guide.NumNodes())/float64(g.NumNodes())))
	}
	add("movies 5k (regular)", workload.Movies(workload.DefaultMovieConfig(5000*scale)))
	add("movies 20k (regular)", workload.Movies(workload.DefaultMovieConfig(20000*scale)))
	add("acedb deep trees", workload.ACeDB(workload.BioConfig{Objects: 200 * scale, MaxDepth: 10, Fanout: 3, Seed: 11}))
	add("web 600 (page/link)", workload.Web(workload.WebConfig{Pages: 600, OutLinks: 3, Seed: 7}))
	// Dense 2-letter random graphs are the subset-construction stress:
	// frontiers stay diverse, so distinct target sets multiply.
	add("random2 n=30 m=60", random2Graph(30, 60))
	add("random2 n=50 m=100", random2Graph(50, 100))
	add("random2 n=60 m=120", random2Graph(60, 120))
	t.print()
	fmt.Println("  expectation: guides of regular/tree data are tiny relative to the data;")
	fmt.Println("  on dense schema-less graphs the subset construction blows up — the")
	fmt.Println("  random2 rows show the guide outgrowing the data by orders of magnitude,")
	fmt.Println("  which is why Build takes a node cap.")
}

// random2Graph is a dense random graph over the two-letter alphabet {a, b},
// the classic worst-case family for determinization.
func random2Graph(n, m int) *ssd.Graph {
	rng := rand.New(rand.NewSource(5))
	g := ssd.New()
	ids := []ssd.NodeID{g.Root()}
	for i := 1; i < n; i++ {
		ids = append(ids, g.AddNode())
	}
	for i := 0; i < m; i++ {
		l := ssd.Sym([]string{"a", "b"}[rng.Intn(2)])
		g.AddEdge(ids[rng.Intn(n)], l, ids[rng.Intn(n)])
	}
	return g
}

// ---------------------------------------------------------------------------
// E10: storage clustering

func runE10Storage(scale int) {
	g := workload.Movies(workload.DefaultMovieConfig(20000 * scale))
	data := storage.Encode(g)
	fmt.Printf("  database: %d nodes, %d edges, %d KiB encoded\n\n",
		g.NumNodes(), g.NumEdges(), len(data)/1024)

	// Build one real page file per clustering policy, then run each workload
	// against a freshly opened store with a deliberately small buffer pool,
	// so the hit rates below are actual pool behavior, not a simulation.
	dir, err := os.MkdirTemp("", "ssdbench-e10-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	const pageSize = 1024
	const poolPages = 32
	clusterings := []storage.Clustering{storage.ClusterDFS, storage.ClusterBFS, storage.ClusterRandom}
	paths := make(map[storage.Clustering]string, len(clusterings))
	for _, c := range clusterings {
		p := filepath.Join(dir, "pages-"+c.String()+".ssdp")
		if err := storage.WritePageFile(p, g, c, pageSize); err != nil {
			panic(err)
		}
		paths[c] = p
	}

	queries := []struct{ name, src string }{
		{"full DFS scan", ""},
		{"title scan", "Entry._.Title._"},
		{"deep search", `_*."Bogart"`},
	}
	t := newTable("workload", "layout", "pages", "page faults", "faults/page")
	for _, q := range queries {
		for _, c := range clusterings {
			ps, err := storage.OpenPageFile(paths[c], poolPages*pageSize)
			if err != nil {
				panic(err)
			}
			if q.src == "" {
				ssd.ReachableFrom(ps, ps.Root())
			} else {
				acc := ssd.AccessorFor(ps)
				pathexpr.MustCompile(q.src).Eval(acc, ps.Root())
				acc.Release()
			}
			st := ps.Stats()
			npages := ps.NumPages()
			ps.Close()
			t.add(q.name, c.String(), npages, st.Misses,
				fmt.Sprintf("%.1f", float64(st.Misses)/float64(npages)))
		}
	}
	t.print()
	fmt.Println("  expectation: with DFS clustering a scan faults about once per page (~1.0,")
	fmt.Println("  the floor); random placement faults nearly once per record — the §4")
	fmt.Println("  clustering claim, now measured on the real buffer pool.")
}

// ---------------------------------------------------------------------------
// E11: bisimulation

func runE11Bisim(scale int) {
	t := newTable("workload", "nodes", "classes", "naive", "incremental", "speedup")
	add := func(name string, g *ssd.Graph) {
		var naive, incr time.Duration
		var k1, k2 int
		naive = timeIt(func() { k1 = bisim.NumClasses(bisim.ClassesNaive(g)) })
		incr = timeIt(func() { k2 = bisim.NumClasses(bisim.Classes(g)) })
		if k1 != k2 {
			panic("E11 class count mismatch")
		}
		t.add(name, g.NumNodes(), k1, naive, incr, ratio(naive, incr))
	}
	add("movies 5k", workload.Movies(workload.DefaultMovieConfig(5000*scale)))
	add("movies 20k", workload.Movies(workload.DefaultMovieConfig(20000*scale)))
	// Deep chain: refinement must propagate n rounds; naive re-signs all
	// nodes each round (quadratic), incremental only the frontier.
	chain := ssd.New()
	cur := chain.Root()
	for i := 0; i < 2000*scale; i++ {
		cur = chain.AddLeaf(cur, ssd.Sym("next"))
	}
	add(fmt.Sprintf("chain %d", 2000*scale), chain)
	t.print()
	fmt.Println("  expectation: identical partitions; the incremental dirty-set refinement")
	fmt.Println("  wins big when refinement localizes (the chain row).")
}
