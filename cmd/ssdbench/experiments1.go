package main

import (
	"fmt"
	"time"

	"repro/internal/bisim"
	"repro/internal/core"
	"repro/internal/dataguide"
	"repro/internal/datalog"
	"repro/internal/index"
	"repro/internal/pathexpr"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/ssd"
	"repro/internal/unql"
	"repro/internal/workload"
)

// timeIt runs f once and returns the wall time.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// timeBest runs f a few times and returns the best wall time, which is less
// noisy for sub-millisecond work.
func timeBest(reps int, f func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		if d := timeIt(f); d < best {
			best = d
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Figure 1

func runFig1(int) {
	g := workload.Fig1(true) // with the figure's misspelled Bacal edge
	db := core.FromGraph(g)
	fmt.Println("  database:", db.Describe())
	fmt.Println()

	t := newTable("query (paper §)", "surface syntax", "answer")
	ask := func(section, q string) {
		res, err := db.Query(q)
		if err != nil {
			panic(err)
		}
		t.add(section, oneLine(q), res.Format())
	}
	ask("§3 select fragment", `select T from DB.Entry.Movie.Title T`)
	ask("§3 'Allen in Casablanca'", `select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast.(!Movie)* A where A = "Allen"`)
	ask("§3 two cast forms", `select {Name: %N} from DB.Entry._.Cast.(isint|Credit.Actors|Special-Guests)? A, A.%N L where isstring(%N)`)
	ask("§1.3 attrs like act%", `select {%L} from DB._* X, X.%L Y where %L like "Act%"`)
	t.print()

	// The restructuring example: fix the Bacal edge with structural
	// recursion, then verify against the corrected figure.
	fixed := unql.RelabelWhere(g, pathexpr.ExactPred{L: ssd.Str("Bacal")}, ssd.Str("Bacall"))
	ok := bisim.Equal(fixed, workload.Fig1(false))
	fmt.Printf("\n  §3 UnQL restructuring: relabel \"Bacal\"→\"Bacall\" reproduces corrected figure: %v\n", ok)
}

func oneLine(s string) string {
	out := make([]byte, 0, len(s))
	space := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\n' || c == '\t' || c == ' ' {
			space = true
			continue
		}
		if space && len(out) > 0 {
			out = append(out, ' ')
		}
		space = false
		out = append(out, c)
	}
	if len(out) > 60 {
		out = append(out[:57], "..."...)
	}
	return string(out)
}

// ---------------------------------------------------------------------------
// E2: browsing — scan vs index

func runE2Browsing(scale int) {
	t := newTable("edges", "query", "hits", "scan", "indexed", "speedup")
	for _, entries := range []int{500 * scale, 5000 * scale, 50000 * scale} {
		g := workload.Movies(workload.DefaultMovieConfig(entries))
		ix := index.BuildValueIndex(g)
		edges := g.NumEdges()

		queries := []struct {
			name string
			pred pathexpr.Pred
			idx  func() int
		}{
			{`string "Bogart"`, pathexpr.ExactPred{L: ssd.Str("Bogart")},
				func() int { return len(ix.Exact(ssd.Str("Bogart"))) }},
			{"ints > 2^16", pathexpr.CmpPred{Op: pathexpr.OpGT, Rhs: ssd.Int(65536)},
				func() int { return len(ix.Compare(pathexpr.OpGT, ssd.Int(65536))) }},
			{`like "Cred%"`, pathexpr.LikePred{Pattern: "Cred%"},
				func() int { return len(ix.Like("Cred%")) }},
		}
		for _, q := range queries {
			var scanHits, idxHits int
			scanTime := timeBest(3, func() { scanHits = len(index.ScanGraph(g, q.pred)) })
			idxTime := timeBest(3, func() { idxHits = q.idx() })
			if scanHits != idxHits {
				panic(fmt.Sprintf("E2 mismatch: scan %d, index %d", scanHits, idxHits))
			}
			t.add(edges, q.name, scanHits, scanTime, idxTime, ratio(scanTime, idxTime))
		}
	}
	t.print()
	fmt.Println("  expectation: index wins and the gap grows with database size.")
}

func ratio(a, b time.Duration) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

// ---------------------------------------------------------------------------
// E3: path queries — product traversal vs DataGuide path index

func runE3PathIndex(scale int) {
	t := newTable("edges", "query", "hits", "NFA product", "lazy-DFA", "dataguide", "guide nodes")
	queries := []string{
		"Entry.Movie.Title._",
		`_*."Bogart"`,
		"Entry._.Cast.(isint|Credit.Actors|Special-Guests)._",
	}
	for _, entries := range []int{500 * scale, 5000 * scale, 25000 * scale} {
		g := workload.Movies(workload.DefaultMovieConfig(entries))
		guide := dataguide.MustBuild(g)
		for _, src := range queries {
			var nfaHits, dfaHits, dgHits int
			nfaTime := timeBest(3, func() {
				au := pathexpr.MustCompile(src)
				nfaHits = len(au.EvalNFA(g, g.Root()))
			})
			dfaTime := timeBest(3, func() {
				au := pathexpr.MustCompile(src)
				dfaHits = len(au.Eval(g, g.Root()))
			})
			dgTime := timeBest(3, func() {
				au := pathexpr.MustCompile(src)
				dgHits = len(guide.Eval(au))
			})
			if nfaHits != dfaHits || dfaHits != dgHits {
				panic("E3 evaluation mismatch")
			}
			t.add(g.NumEdges(), src, nfaHits, nfaTime, dfaTime, dgTime, guide.NumNodes())
		}
	}
	t.print()
	fmt.Println("  expectation: the guide is far smaller than the data on regular databases,")
	fmt.Println("  so guide evaluation beats direct traversal for selective queries.")
}

// ---------------------------------------------------------------------------
// E4: datalog — naive vs semi-naive

func runE4Datalog(scale int) {
	t := newTable("workload", "edges", "tuples", "naive joins", "semi joins", "naive time", "semi time")
	progSrc := `
		reach(X) :- root(X).
		reach(Y) :- reach(X), edge(X, _, Y).`
	prog := datalog.MustParseProgram(progSrc)
	for _, pages := range []int{200 * scale, 1000 * scale, 4000 * scale} {
		g := workload.Web(workload.WebConfig{Pages: pages, OutLinks: 3, Seed: 7})
		var naiveJoins, semiJoins, tuples int
		en := datalog.NewEngine(g)
		naiveTime := timeIt(func() {
			res, err := en.Run(prog, datalog.Naive)
			if err != nil {
				panic(err)
			}
			tuples = res["reach"].Len()
		})
		naiveJoins = en.Joins
		es := datalog.NewEngine(g)
		semiTime := timeIt(func() {
			res, err := es.Run(prog, datalog.SemiNaive)
			if err != nil {
				panic(err)
			}
			if res["reach"].Len() != tuples {
				panic("E4 result mismatch")
			}
		})
		semiJoins = es.Joins
		t.add(fmt.Sprintf("web %d pages", pages), g.NumEdges(), tuples,
			naiveJoins, semiJoins, naiveTime, semiTime)
	}
	// Deep-recursion case: a long chain maximizes rounds.
	chain := ssd.New()
	cur := chain.Root()
	for i := 0; i < 300*scale; i++ {
		cur = chain.AddLeaf(cur, ssd.Sym("next"))
	}
	en := datalog.NewEngine(chain)
	naiveTime := timeIt(func() { _, _ = en.Run(prog, datalog.Naive) })
	es := datalog.NewEngine(chain)
	semiTime := timeIt(func() { _, _ = es.Run(prog, datalog.SemiNaive) })
	t.add(fmt.Sprintf("chain %d", 300*scale), chain.NumEdges(), chain.NumNodes(),
		en.Joins, es.Joins, naiveTime, semiTime)
	t.print()
	fmt.Println("  expectation: semi-naive does asymptotically less join work; the gap")
	fmt.Println("  explodes on deep recursion (the chain row).")
}

// ---------------------------------------------------------------------------
// E5: relational equivalence

func runE5Equivalence(scale int) {
	t := newTable("movies", "query", "RA rows", "query rows", "equal", "RA time", "query time")
	for _, n := range []int{100 * scale, 1000 * scale} {
		rdb := workload.Relational(n, n/10+1, 3)
		g := relstore.EncodeRelational(rdb)
		movies, directors := rdb["movies"], rdb["directors"]

		// σ/π: titles of movies by a fixed director.
		someDirector := movies.Rows()[0][movies.Col("director")]
		var ra *relstore.Relation
		raTime := timeBest(3, func() {
			ra = relstore.Project(relstore.SelectEq(movies, "director", someDirector), "title")
		})
		q := query.MustParse(fmt.Sprintf(`
			select {tuple: {title: T}}
			from DB.movies.tuple R, R.title T, R.director D
			where D = %q`, mustText(someDirector)))
		var qrows int
		var qres *ssd.Graph
		qTime := timeBest(3, func() {
			var err error
			qres, err = query.Eval(q, g)
			if err != nil {
				panic(err)
			}
		})
		got := decodeResult(qres)
		qrows = got.Len()
		t.add(n, "π_title(σ_director)", ra.Len(), qrows, got.Equal(ra), raTime, qTime)

		// ⋈: movie titles with director birth years.
		var raj *relstore.Relation
		rajTime := timeBest(3, func() {
			raj = relstore.Project(relstore.Join(movies, directors), "title", "born")
		})
		qj := query.MustParse(`
			select {tuple: {title: T, born: B}}
			from DB.movies.tuple R, R.title T, R.director D,
			     DB.directors.tuple S, S.director D2, S.born B
			where D = D2`)
		var qjres *ssd.Graph
		qjTime := timeBest(3, func() {
			var err error
			qjres, err = query.Eval(qj, g)
			if err != nil {
				panic(err)
			}
		})
		gotj := relstore.Project(decodeResult(qjres), "title", "born")
		t.add(n, "π(movies ⋈ directors)", raj.Len(), gotj.Len(), gotj.Equal(raj), rajTime, qjTime)
	}
	t.print()
	fmt.Println("  expectation: identical answers (the paper's expressiveness claim);")
	fmt.Println("  the dedicated relational plan is faster — the cost of generality.")
}

func mustText(l ssd.Label) string {
	s, ok := l.Text()
	if !ok {
		panic("expected string label")
	}
	return s
}

func decodeResult(res *ssd.Graph) *relstore.Relation {
	wrapped := ssd.New()
	wrapped.AddEdge(wrapped.Root(), ssd.Sym("out"), wrapped.Graft(res, res.Root()))
	db, err := relstore.DecodeRelational(wrapped)
	if err != nil {
		panic(err)
	}
	return db["out"]
}

// ---------------------------------------------------------------------------
// E6: restructuring — memoized GExt vs tree unfolding

func runE6Restructure(scale int) {
	t := newTable("input", "nodes", "op", "GExt (memoized)", "tree unfolding", "note")
	relabel := func(l ssd.Label, _, _ ssd.NodeID, _ *ssd.Graph) unql.Action {
		if s, ok := l.Symbol(); ok && s == "Director" {
			return unql.RelabelTo(ssd.Sym("DirectedBy"))
		}
		return unql.Keep(l)
	}

	// Acyclic movie DB without references: both succeed; compare times.
	cfg := workload.DefaultMovieConfig(2000 * scale)
	cfg.RefProb = 0
	acyclic := workload.Movies(cfg)
	memoTime := timeIt(func() { unql.GExt(acyclic, relabel) })
	treeTime := timeIt(func() {
		if _, err := unql.GExtTree(acyclic, relabel, 64); err != nil {
			panic(err)
		}
	})
	t.add("movies (acyclic)", acyclic.NumNodes(), "relabel Director", memoTime, treeTime, "both ok")

	// Shared DAG: tree unfolding is exponential; bound the depth instead of
	// waiting. 2^26 paths through 26 shared diamonds.
	dag := ssd.New()
	cur := dag.Root()
	depth := 22
	for i := 0; i < depth; i++ {
		next := dag.AddNode()
		dag.AddEdge(cur, ssd.Sym("L"), next)
		dag.AddEdge(cur, ssd.Sym("R"), next)
		cur = next
	}
	dag.AddLeaf(cur, ssd.Int(1))
	keep := func(l ssd.Label, _, _ ssd.NodeID, _ *ssd.Graph) unql.Action { return unql.Keep(l) }
	memoDag := timeIt(func() { unql.GExt(dag, keep) })
	treeDag := timeIt(func() { _, _ = unql.GExtTree(dag, keep, depth+2) })
	t.add(fmt.Sprintf("DAG (2^%d paths)", depth), dag.NumNodes(), "identity", memoDag, treeDag,
		"unfolding copies per path")

	// Cyclic movie DB: tree unfolding cannot terminate (depth bound hit);
	// GExt handles it.
	cyc := workload.Movies(workload.DefaultMovieConfig(1000 * scale))
	memoCyc := timeIt(func() { unql.GExt(cyc, relabel) })
	_, err := unql.GExtTree(cyc, relabel, 64)
	t.add("movies (cyclic refs)", cyc.NumNodes(), "relabel Director", memoCyc, "diverges",
		fmt.Sprintf("tree recursion: %v", err != nil))
	t.print()
	fmt.Println("  expectation: one-output-node-per-input-node (the paper's restriction for")
	fmt.Println("  well-definedness) keeps GExt linear; naive unfolding blows up or diverges.")
}
