// Command ssdbench regenerates the experiment tables of EXPERIMENTS.md:
// one experiment per quantitative claim of the paper (see DESIGN.md §2).
//
// Usage:
//
//	ssdbench                  # run everything at default scale
//	ssdbench -exp e3,e4       # run selected experiments
//	ssdbench -scale 3         # multiply workload sizes
//	ssdbench -list            # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// experiment is one runnable experiment. Run prints a table to stdout.
type experiment struct {
	id    string
	title string
	run   func(scale int)
}

var experiments = []experiment{
	{"fig1", "Figure 1: the movie database and the paper's queries", runFig1},
	{"e2", "E2 (§1.3): browsing queries — scan vs value index", runE2Browsing},
	{"e3", "E3 (§3): regular path queries — traversal vs DataGuide index", runE3PathIndex},
	{"e4", "E4 (§3): graph datalog — naive vs semi-naive", runE4Datalog},
	{"e5", "E5 (§3): UnQL select on relational encodings ≡ relational algebra", runE5Equivalence},
	{"e6", "E6 (§3): restructuring — memoized GExt vs tree unfolding", runE6Restructure},
	{"e7", "E7 (§4): query decomposition across sites — serial vs parallel", runE7Decomposition},
	{"e8", "E8 (§5): schema-based query pruning", runE8SchemaPruning},
	{"e9", "E9 (§5): DataGuide construction — regular vs irregular data", runE9DataGuide},
	{"e10", "E10 (§4): page I/O — DFS clustering vs random placement", runE10Storage},
	{"e11", "E11 (§2): bisimulation — naive vs incremental refinement", runE11Bisim},
	{"e12", "E12: query engines — naive tree-walker vs slot planner + iterators", runE12Engines},
	{"e13", "E13: derived-structure maintenance — incremental vs full rebuild", runE13Maintenance},
	{"e14", "E14: statement lifecycle — prepared execute-many vs one-shot parse+plan", runE14Prepared},
	{"e15", "E15: intra-query parallelism — morsel-driven parallel scan vs serial, 1/2/4 workers", runE15Parallel},
}

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment ids (or 'all')")
		scale   = flag.Int("scale", 1, "workload scale multiplier")
		list    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-5s %s\n", e.id, e.title)
		}
		return
	}
	want := map[string]bool{}
	if *expFlag != "all" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
		for id := range want {
			if !known(id) {
				fmt.Fprintf(os.Stderr, "ssdbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
		}
	}
	for _, e := range experiments {
		if *expFlag != "all" && !want[e.id] {
			continue
		}
		fmt.Printf("=== %s — %s\n", strings.ToUpper(e.id), e.title)
		e.run(*scale)
		fmt.Println()
	}
}

func known(id string) bool {
	for _, e := range experiments {
		if e.id == id {
			return true
		}
	}
	return false
}

// table is a tiny column-aligned printer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.rows = append(t.rows, row)
}

func (t *table) print() {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, width[i])
		}
		fmt.Println("  " + strings.Join(parts, "  "))
	}
	line(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", width[i])
	}
	line(rule)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// sortedKeys returns map keys sorted, for deterministic output.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
