package main

import (
	"fmt"

	"repro/internal/bisim"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// E12: query engines — naive tree-walking evaluator vs slot-based planner
// with the pull-based iterator executor. The ablation behind the
// planner/executor refactor: same queries, same results (checked by
// bisimulation), different machinery.

func runE12Engines(scale int) {
	queries := []struct{ name, src string }{
		{"fixed path", `select T from DB.Entry.Movie.Title T`},
		{"allen (path-heavy)", `select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = "Allen"`},
		{"both casts", `select {Name: %N} from DB.Entry._.Cast.(isint|Credit.Actors|Special-Guests)? C, C.%N L where isstring(%N)`},
		{"indexable seek", `select X from DB._*.Episode X`},
		{"backward chain", `select X from DB.Entry.TV-Show.Episode X`},
	}
	t := newTable("entries", "query", "naive", "planned", "planned+index", "speedup")
	for _, entries := range []int{500 * scale, 2500 * scale} {
		g := workload.Movies(workload.DefaultMovieConfig(entries))
		ix := index.BuildLabelIndex(g)
		for _, qc := range queries {
			q := query.MustParse(qc.src)
			var naiveRes, plannedRes *ssd.Graph
			naiveTime := timeBest(3, func() {
				res, err := query.EvalNaive(q, g)
				if err != nil {
					panic(err)
				}
				naiveRes = res
			})
			plannedTime := timeBest(3, func() {
				res, err := query.EvalOpts(q, g, query.Options{Minimize: true})
				if err != nil {
					panic(err)
				}
				plannedRes = res
			})
			indexedTime := timeBest(3, func() {
				if _, err := query.EvalOpts(q, g, query.Options{
					Minimize: true,
					Plan:     query.PlanOptions{Label: ix},
				}); err != nil {
					panic(err)
				}
			})
			if !bisim.Equal(naiveRes, plannedRes) {
				panic(fmt.Sprintf("E12 mismatch on %q", qc.name))
			}
			t.add(entries, qc.name, naiveTime, plannedTime, indexedTime, ratio(naiveTime, plannedTime))
		}
	}
	t.print()
	fmt.Println("  expectation: the planner wins everywhere; index access paths")
	fmt.Println("  widen the gap on `_*.label` and rare-interior-label chains.")
}
