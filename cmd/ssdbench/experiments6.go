package main

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// E15: intra-query parallelism — the morsel-driven parallel scan vs the
// serial executor, at 1/2/4 workers, through the statement layer (so the
// worker plans come from the per-statement pool exactly as ssdserve's
// requests draw them). The merge is order-preserving, so every arm streams
// identical rows; the table reports wall time per full drain and the
// speedup over serial. On a single-core host the parallel arms can only
// show their overhead — the speedup column is what CI's multi-core runners
// and production hardware see.

func runE15Parallel(scale int) {
	entries := 10000 * scale
	g := workload.Movies(workload.DefaultMovieConfig(entries))
	fmt.Printf("  %d-entry movie DB, GOMAXPROCS=%d\n\n", entries, runtime.GOMAXPROCS(0))

	shapes := []struct {
		name string
		src  string
		args []core.Param
	}{
		{"e1-path-heavy", `select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = $who`,
			[]core.Param{core.P("who", "Allen")}},
		{"label-join", `select {T: %L} from DB.Entry.%L M, M.Title T`, nil},
	}

	const reps = 3
	t := newTable("query", "workers", "drain", "rows", "speedup vs serial")
	for _, sh := range shapes {
		var serial int64
		for _, workers := range []int{1, 2, 4} {
			db := core.FromGraph(g)
			db.SetParallelism(workers)
			s, err := db.Prepare(sh.src)
			if err != nil {
				panic(err)
			}
			rows := 0
			drain := func() {
				r, err := s.Query(context.Background(), sh.args...)
				if err != nil {
					panic(err)
				}
				rows = 0
				for r.Next() {
					rows++
				}
				if err := r.Err(); err != nil {
					panic(err)
				}
				r.Close()
			}
			drain() // warm the pool and the snapshot's lazy structures
			d := timeBest(reps, drain)
			if workers == 1 {
				serial = int64(d)
			}
			t.add(sh.name, workers, d, rows,
				fmt.Sprintf("%.2fx", float64(serial)/float64(int64(d))))
		}
	}
	t.print()
}
