package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dataguide"
	"repro/internal/index"
	"repro/internal/mutate"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// E13: incremental vs full-rebuild maintenance of derived structures under
// update:query mixes. The mutation subsystem's claim: after a single-edge
// batch, deriving the new label index, value index and DataGuide from the
// old ones plus the batch's delta (index.Apply, Guide.ApplyDelta) beats
// rebuilding them from the new graph — the incremental re-derivation idea
// of deductive-database integrity maintenance applied to this engine.

func runE13Maintenance(scale int) {
	entries := 5000 * scale
	mixes := []struct {
		name             string
		updates, queries int // per round
	}{
		{"update-only 1:0", 1, 0},
		{"write-heavy 4:1", 4, 1},
		{"balanced    1:1", 1, 1},
		{"read-heavy  1:8", 1, 8},
	}
	const rounds = 40

	t := newTable("entries", "mix", "incremental", "rebuild", "speedup")
	for _, mix := range mixes {
		// Both arms replay the same deterministic update/query stream.
		run := func(incremental bool) time.Duration {
			g := workload.Movies(workload.DefaultMovieConfig(entries))
			lx := index.BuildLabelIndex(g)
			vx := index.BuildValueIndex(g)
			guide := dataguide.MustBuild(g)
			rng := rand.New(rand.NewSource(13))
			sources := moviesEntryNodes(g)
			return timeBest(1, func() {
				for r := 0; r < rounds; r++ {
					for u := 0; u < mix.updates; u++ {
						b := mutate.NewBatch(g)
						tag := b.AddNode()
						leaf := b.AddNode()
						src := sources[rng.Intn(len(sources))]
						if err := b.AddEdge(src, ssd.Sym("Tag"), tag); err != nil {
							panic(err)
						}
						if err := b.AddEdge(tag, ssd.Str("tag-value"), leaf); err != nil {
							panic(err)
						}
						g2, res, err := mutate.ApplyCOW(g, b)
						if err != nil {
							panic(err)
						}
						g = g2
						if incremental {
							lx = lx.Apply(res.Delta)
							vx = vx.Apply(res.Delta)
							ng, ok := guide.ApplyDelta(g, res.Delta, 0)
							if !ok {
								// Garbage-cap fallback: amortized rebuild.
								ng = dataguide.MustBuild(g)
							}
							guide = ng
						} else {
							lx = index.BuildLabelIndex(g)
							vx = index.BuildValueIndex(g)
							guide = dataguide.MustBuild(g)
						}
					}
					for q := 0; q < mix.queries; q++ {
						if len(vx.Exact(ssd.Str("tag-value"))) == 0 && r > 0 {
							panic("E13: maintained value index lost an update")
						}
						lx.Lookup(ssd.Sym("Tag"))
						guide.LookupPath([]ssd.Label{ssd.Sym("Entry"), ssd.Sym("Tag")})
					}
				}
			})
		}
		incTime := run(true)
		rebTime := run(false)
		t.add(entries, mix.name, incTime, rebTime, ratio(rebTime, incTime))
	}
	t.print()
	fmt.Println("  expectation: incremental maintenance wins by well over 5x on")
	fmt.Println("  single-edge batches; index lookups and guide probes cost the")
	fmt.Println("  same on both arms, so heavier query mixes dilute the gap only")
	fmt.Println("  once queries dominate the round.")
}

// moviesEntryNodes collects the targets of the root's Entry edges — the
// interior nodes E13 hangs new subtrees off.
func moviesEntryNodes(g *ssd.Graph) []ssd.NodeID {
	var out []ssd.NodeID
	for _, e := range g.Out(g.Root()) {
		out = append(out, e.To)
	}
	return out
}
