package main

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// E14: the statement lifecycle — prepare-once/execute-many vs one-shot.
// The claim behind the Prepare/Stmt/Rows redesign: a production workload
// runs the same query shapes with different constants at high rates, so
// amortizing lexing, parsing and planning across executions (and streaming
// rows instead of materializing env slices) must win, and parameter
// re-binding must cost nothing over re-running a constant.

func runE14Prepared(scale int) {
	entries := 2000 * scale
	g := workload.Movies(workload.DefaultMovieConfig(entries))
	reps := 200

	shapes := []struct {
		name string
		src  string
		args []core.Param
	}{
		{"fixed-path", `select T from DB.Entry.Movie.Title T`, nil},
		{"param-filter", `select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = $who`,
			[]core.Param{core.P("who", "Allen")}},
	}

	t := newTable("query", "one-shot (parse+plan each)", "prepared Stmt.Exec", "amortized speedup")
	for _, sh := range shapes {
		db := core.FromGraph(g)
		// Warm the snapshot's lazy structures so both arms plan with the
		// same inputs.
		if _, err := db.Query(`select T from DB.Entry.Movie.Title T`); err != nil {
			panic(err)
		}

		// One-shot: what the pre-statement facade did on every call —
		// lex, parse, plan, run.
		lit := literalize(sh.src, sh.args)
		oneShot := timeBest(3, func() {
			for i := 0; i < reps; i++ {
				q, err := query.Parse(lit)
				if err != nil {
					panic(err)
				}
				p, err := query.NewPlan(q, db.Graph(), query.PlanOptions{})
				if err != nil {
					panic(err)
				}
				if _, err := p.EvalGraph(query.Options{Minimize: true}); err != nil {
					panic(err)
				}
			}
		})

		s, err := db.Prepare(sh.src)
		if err != nil {
			panic(err)
		}
		prepared := timeBest(3, func() {
			for i := 0; i < reps; i++ {
				if _, err := s.Exec(context.Background(), sh.args...); err != nil {
					panic(err)
				}
			}
		})
		t.add(sh.name, perExec(oneShot, reps), perExec(prepared, reps),
			fmt.Sprintf("%.2fx", float64(oneShot)/float64(prepared)))
	}
	t.print()
	fmt.Println()

	// Streaming vs materialized row access: the Rows cursor reuses one Env
	// per row, QueryRows copies every row into an independent slice.
	db := core.FromGraph(g)
	const rowsSrc = `select T from DB.Entry.Movie M, M.Title T`
	s, err := db.Prepare(rowsSrc)
	if err != nil {
		panic(err)
	}
	var rowCount int
	stream := timeBest(3, func() {
		rows, err := s.Query(context.Background())
		if err != nil {
			panic(err)
		}
		rowCount = 0
		for rows.Next() {
			_ = rows.Env()
			rowCount++
		}
		if err := rows.Err(); err != nil {
			panic(err)
		}
		rows.Close()
	})
	materialized := timeBest(3, func() {
		envs, err := db.QueryRows(rowsSrc)
		if err != nil {
			panic(err)
		}
		rowCount = len(envs)
	})
	t2 := newTable("rows access", "rows", "streaming Rows", "materialized QueryRows")
	t2.add(rowsSrc, rowCount, stream, materialized)
	t2.print()
}

// literalize substitutes the experiment's fixed argument values into the
// source text so the one-shot arm runs an equivalent constant query.
func literalize(src string, args []core.Param) string {
	for _, a := range args {
		src = strings.ReplaceAll(src, "$"+a.Name, a.Value.String())
	}
	return src
}

func perExec(d time.Duration, reps int) string {
	return fmt.Sprint(d / time.Duration(reps))
}
