// Command ssdq is the interactive face of the library: it loads a
// semistructured database (text .ssd or binary .ssdg) and runs queries
// against it.
//
// Usage:
//
//	ssdq -db file.ssd stats
//	ssdq -db file.ssd query  'select T from DB.Entry.Movie.Title T'
//	ssdq -db file.ssd -engine naive query 'select T from DB.Entry.Movie.Title T'
//	ssdq -db file.ssd explain 'select T from DB.Entry.Movie.Title T'
//	ssdq -db file.ssd prepare 'select T from DB.Entry.$kind.Title T'
//	ssdq -db file.ssd -param kind=Movie run 'select T from DB.Entry.$kind.Title T'
//	ssdq -db file.ssd -param who='"Allen"' run 'select {T: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = $who'
//	ssdq -db file.ssd run 'path: Entry.Movie.Title'
//	ssdq -db file.ssd run 'unql: relabel Title to TITLE'
//	ssdq -db file.ssd path   'Entry.Movie.(!Movie)*."Allen"'
//	ssdq -db file.ssd datalog 'reach(X) :- root(X). reach(Y) :- reach(X), edge(X,_,Y).'
//	ssdq -db file.ssd browse -depth 3
//	ssdq -db file.ssd guide
//	ssdq -db file.ssd schema
//	ssdq -db file.ssd fmt
//	ssdq -db in.ssd convert -o out.ssdg   (formats: .ssd text, .ssdg binary, .oem)
//	ssdq -db file.ssdg -wal file.wal mutate 'addnode; addedge 0 Tag $0'
//	ssdq -db file.ssdg -wal file.wal mutate script.mut   (load statements from a file)
//	ssdq -db file.ssd save dbdir          # export as a durable directory
//	ssdq open dbdir                       # recover it and report what that took
//	ssdq -data dbdir query '...'          # any command against a durable directory
//	ssdq -data dbdir mutate 'addnode; addedge 0 Tag $0'   # WAL-logged commit
//	ssdq -data dbdir checkpoint           # fold the WAL into a new generation
//	ssdq demo            # run the Figure 1 tour without a database file
//
// prepare parses a statement once and reports its sniffed language,
// declared $parameters, result columns and plan. run executes a prepared
// statement: -param name=value (repeatable) binds parameters — values
// parse as label literals (symbol, "string", number, true/false). Query
// and path statements stream their rows; transform statements print the
// restructured database. -engine naive runs the substitution-based naive
// evaluator with identical parameter semantics.
//
// The mutate command applies a mutation script (see internal/mutate's
// ParseScript for the statement forms) as one atomic batch. -wal attaches a
// write-ahead log for ANY command: batches already in the log are replayed
// before the command runs (so `-db base.ssdg -wal base.wal` always names
// the current state, for queries as much as for mutations), and mutate
// appends its batch to the log before applying it. With -o the mutated
// database is also saved.
//
// Durable directories: `save <dir>` exports the loaded database as the
// first snapshot generation of a durable directory; -data <dir> runs any
// command against such a directory (recovering the newest generation and
// replaying the WAL tail first), with mutate commits logged durably; the
// checkpoint command folds the log into a fresh generation so the next
// open replays nothing; `open <dir>` just recovers and reports what that
// took. See internal/core's OpenPath/Checkpoint.
//
// With no -db or -data flag, ssdq uses the built-in Figure 1 database.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/mutate"
	"repro/internal/query"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// paramFlags collects repeatable -param name=value flags.
type paramFlags []core.Param

func (p *paramFlags) String() string { return fmt.Sprintf("%d params", len(*p)) }

func (p *paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	// Values parse as label literals: bare word → symbol, "quoted" →
	// string, number → int/float, true/false.
	l, err := core.ParseLabelLiteral(val)
	if err != nil {
		return err
	}
	*p = append(*p, core.Param{Name: name, Value: l})
	return nil
}

func main() {
	var (
		dbPath  = flag.String("db", "", "database file (.ssd text or .ssdg binary); default: built-in Figure 1")
		dataDir = flag.String("data", "", "durable database directory (snapshots + WAL); alternative to -db")
		depth   = flag.Int("depth", 3, "browse: maximum path depth")
		limit   = flag.Int("limit", 40, "browse: maximum paths listed")
		out     = flag.String("o", "", "convert/mutate: output file (.ssd or .ssdg)")
		wal     = flag.String("wal", "", "mutate: write-ahead log file (replayed on open, appended on commit)")
		engine  = flag.String("engine", "planned", "query/run: evaluation engine (planned|naive)")
		explain = flag.Bool("explain", false, "query: print the chosen plan before the result")
		analyze = flag.Bool("analyze", false, "explain: execute the query and annotate the plan with actual row counts")
		trace   = flag.Bool("trace", false, "run: stream the rows, then print the per-operator execution trace as JSON on stderr")
		pool    = flag.Int64("pool-bytes", 0, "with -data: read through an on-disk page file with a buffer pool of this many bytes (0 = all in memory)")
		params  paramFlags
	)
	flag.Var(&params, "param", "run: bind a $parameter as name=value (repeatable)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: ssdq [flags] <stats|query|explain|prepare|run|path|datalog|browse|guide|schema|fmt|convert|mutate|save|open|checkpoint|demo> [arg]")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	cmd, rest := args[0], args[1:]

	if cmd == "open" {
		// open recovers a durable directory and reports what that took; it
		// takes the directory as its argument, not through -data.
		runOpen(arg(rest, "open"))
		return
	}

	var db *core.Database
	var err error
	switch {
	case *dataDir != "":
		if *wal != "" {
			fatal(fmt.Errorf("-wal conflicts with -data: the directory has its own log"))
		}
		if *dbPath != "" {
			fatal(fmt.Errorf("-db conflicts with -data: the directory is the database (use `ssdq -db file save <dir>` to seed one)"))
		}
		if db, err = core.OpenPathOptions(*dataDir, core.Options{PoolBytes: *pool}); err != nil {
			fatal(err)
		}
		defer db.CloseWAL()
	default:
		if *pool > 0 {
			fatal(fmt.Errorf("-pool-bytes requires -data: the page file lives in the durable directory"))
		}
		if db, err = load(*dbPath); err != nil {
			fatal(err)
		}
		if *wal != "" {
			// Replay the log for every command, not just mutate: with a WAL
			// the current state is snapshot + log, and querying the bare
			// snapshot would silently serve stale data.
			if err := db.OpenWAL(*wal); err != nil {
				fatal(err)
			}
			defer db.CloseWAL()
		}
	}

	switch cmd {
	case "stats":
		fmt.Println(db.Describe())
	case "fmt":
		fmt.Println(db.Format())
	case "query":
		src := arg(rest, "query")
		eng, err := parseEngine(*engine)
		if err != nil {
			fatal(err)
		}
		if *explain {
			plan, err := db.Explain(src)
			if err != nil {
				fatal(err)
			}
			if eng == query.EngineNaive {
				fmt.Println("-- plan shown for reference; -engine naive runs the tree-walking evaluator instead")
			}
			fmt.Print(plan)
		}
		res, err := db.QueryEngine(src, eng)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Format())
	case "explain":
		src := arg(rest, "explain")
		var plan string
		if *analyze {
			plan, err = db.ExplainAnalyze(context.Background(), src)
		} else {
			plan, err = db.Explain(src)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Print(plan)
	case "prepare":
		s, err := db.Prepare(arg(rest, "prepare"))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("language: %s\n", s.Lang())
		if ps := s.Params(); len(ps) > 0 {
			fmt.Printf("params:   $%s\n", strings.Join(ps, ", $"))
		}
		if cols := s.Columns(); len(cols) > 0 {
			fmt.Printf("columns:  %s\n", strings.Join(cols, ", "))
		}
		plan, err := s.Explain()
		if err != nil {
			fatal(err)
		}
		fmt.Print(plan)
	case "run":
		eng, err := parseEngine(*engine)
		if err != nil {
			fatal(err)
		}
		if err := runStmt(db, arg(rest, "run"), params, eng, *limit, *trace); err != nil {
			fatal(err)
		}
	case "path":
		nodes, err := db.PathQuery(arg(rest, "path"))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d matching nodes\n", len(nodes))
		for i, n := range nodes {
			if i >= *limit {
				fmt.Printf("... (%d more)\n", len(nodes)-i)
				break
			}
			fmt.Printf("node %d: %s\n", n, clip(ssd.Format(db.Graph(), n), 100))
		}
	case "datalog":
		rels, err := db.Datalog(arg(rest, "datalog"))
		if err != nil {
			fatal(err)
		}
		names := make([]string, 0, len(rels))
		for name := range rels {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%s: %d tuples\n", name, rels[name].Len())
			for i, t := range rels[name].Tuples() {
				if i >= *limit {
					fmt.Printf("  ... (%d more)\n", rels[name].Len()-i)
					break
				}
				fmt.Printf("  %s\n", t)
			}
		}
	case "browse":
		for _, a := range db.Browse(*depth, *limit) {
			parts := make([]string, len(a.Path))
			for i, l := range a.Path {
				parts[i] = l.String()
			}
			fmt.Printf("%-60s %d\n", strings.Join(parts, "."), a.ExtentLen)
		}
	case "guide":
		g := db.DataGuide()
		fmt.Printf("dataguide: %d nodes, %d edges (data: %s)\n",
			g.NumNodes(), g.G.NumEdges(), db.Describe())
	case "schema":
		s := db.InferSchema()
		nodes, edges := s.Size()
		fmt.Printf("inferred schema (%d nodes, %d edges):\n%s\n", nodes, edges, s)
	case "convert":
		if *out == "" {
			fatal(fmt.Errorf("convert requires -o"))
		}
		if err := save(db, *out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	case "mutate":
		if err := runMutate(db, arg(rest, "mutate"), *out); err != nil {
			fatal(err)
		}
	case "save":
		dir := arg(rest, "save")
		if err := db.SavePath(dir); err != nil {
			fatal(err)
		}
		fmt.Printf("saved %s as durable directory %s\n", db.Describe(), dir)
	case "checkpoint":
		if !db.Durable() {
			fatal(fmt.Errorf("checkpoint requires -data"))
		}
		info, err := db.Checkpoint()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("checkpointed generation %d: %s (%d bytes, %d batches folded)\n",
			info.Seq, info.Path, info.Bytes, info.Truncated)
	case "demo":
		demo(db)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func arg(rest []string, cmd string) string {
	if len(rest) != 1 {
		fatal(fmt.Errorf("%s requires exactly one argument", cmd))
	}
	return rest[0]
}

func parseEngine(s string) (query.Engine, error) {
	switch s {
	case "planned":
		return query.EnginePlanned, nil
	case "naive":
		return query.EngineNaive, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want planned or naive)", s)
	}
}

func load(path string) (*core.Database, error) {
	if path == "" {
		return core.FromGraph(workload.Fig1(false)), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch {
	case strings.HasSuffix(path, ".ssdg"):
		return core.Open(path)
	case strings.HasSuffix(path, ".oem"):
		return core.ParseOEM(string(data))
	default:
		return core.ParseText(string(data))
	}
}

func save(db *core.Database, path string) error {
	switch {
	case strings.HasSuffix(path, ".ssdg"):
		return db.Save(path)
	case strings.HasSuffix(path, ".oem"):
		return os.WriteFile(path, []byte(db.FormatOEM()), 0o644)
	default:
		return os.WriteFile(path, []byte(db.Format()+"\n"), 0o644)
	}
}

// runMutate applies one mutation script as an atomic batch — through the
// WAL when -wal is given (main opened it) — and optionally saves the
// result.
func runMutate(db *core.Database, script, outPath string) error {
	// The argument is either inline statements or a script file.
	if data, err := os.ReadFile(script); err == nil {
		script = string(data)
	}
	b, err := mutate.ParseScript(script, db.Graph())
	if err != nil {
		return err
	}
	if err := db.Commit(b); err != nil {
		return err
	}
	fmt.Printf("applied %d records: %s\n", b.Len(), db.Describe())
	if outPath != "" {
		if err := save(db, outPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return nil
}

// runStmt prepares and executes one statement with bound parameters.
// Query statements print the result database (streaming the rows would
// lose the select template); with -engine naive the substitution-based
// evaluator runs instead — identical parameter semantics, no plan. Path
// and datalog statements stream their rows; transforms print the
// restructured database.
func runStmt(db *core.Database, src string, params []core.Param, eng query.Engine, limit int, trace bool) error {
	s, err := db.Prepare(src)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if trace && s.Lang() != core.LangTransform {
		// Tracing needs the streaming cursor, so select queries stream
		// their rows here instead of materializing a result database.
		if eng == query.EngineNaive {
			fmt.Println("-- -trace runs the planned engine")
		}
		qtr := new(core.QueryTrace)
		rows, err := s.QueryTraced(ctx, qtr, params...)
		if err != nil {
			return err
		}
		if err := streamRows(rows, limit); err != nil {
			return err
		}
		// streamRows closed the cursor, which finalized the trace.
		out, err := json.MarshalIndent(qtr, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, string(out))
		return nil
	}
	switch s.Lang() {
	case core.LangQuery:
		var res *core.Database
		if eng == query.EngineNaive {
			res, err = db.QueryEngineArgs(s.Source(), eng, params...)
		} else {
			res, err = s.Exec(ctx, params...)
		}
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
	case core.LangTransform:
		res, err := s.Exec(ctx, params...)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
	default: // path, datalog: stream rows
		if eng == query.EngineNaive && s.Lang() == core.LangPath {
			// The ablation engines only exist for the query language; path
			// traversal has a single implementation.
			fmt.Println("-- -engine naive has no effect on path statements")
		}
		rows, err := s.Query(ctx, params...)
		if err != nil {
			return err
		}
		if err := streamRows(rows, limit); err != nil {
			return err
		}
	}
	return nil
}

// streamRows prints a cursor's rows up to the print cutoff, then the total
// count. It closes the cursor before returning.
func streamRows(rows *core.Rows, limit int) error {
	defer rows.Close()
	cols := rows.Columns()
	cells := make([]string, len(cols))
	dests := make([]any, len(cols))
	for i := range cells {
		dests[i] = &cells[i]
	}
	n := 0
	for rows.Next() {
		// Past the print cutoff only the count matters; skip the
		// per-column formatting.
		if n < limit {
			if err := rows.Scan(dests...); err != nil {
				return err
			}
			fmt.Println("  " + strings.Join(cells, "  "))
		} else if n == limit {
			fmt.Println("  ...")
		}
		n++
	}
	if err := rows.Err(); err != nil {
		return err
	}
	fmt.Printf("%d rows\n", n)
	rows.Close()
	return nil
}

// runOpen recovers a durable directory and reports the recovery cost: the
// generation recovered from and how much of the log it had to replay.
func runOpen(dir string) {
	db, err := core.OpenPath(dir)
	if err != nil {
		fatal(err)
	}
	defer db.CloseWAL()
	ri := db.LastRecovery()
	if ri.SnapshotPath == "" {
		fmt.Printf("opened %s: no snapshot yet, %d batches replayed from the log\n", dir, ri.Replayed)
	} else {
		fmt.Printf("opened %s: generation %d, %d batches skipped (already folded), %d replayed\n",
			dir, ri.SnapshotSeq, ri.Skipped, ri.Replayed)
	}
	fmt.Println(db.Describe())
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssdq:", err)
	os.Exit(1)
}

// demo walks through the paper's running examples on the loaded database.
func demo(db *core.Database) {
	fmt.Println("database:", db.Describe())
	steps := []struct{ title, q string }{
		{"movie titles", `select T from DB.Entry.Movie.Title T`},
		{"who directed something Allen acted in",
			`select {Director: D} from DB.Entry.Movie M, M.Director D, M.Cast._* A where A = "Allen"`},
		{"both cast representations at once",
			`select {Name: %N} from DB.Entry._.Cast.(isint|Credit.Actors|Special-Guests)? A, A.%N L where isstring(%N)`},
		{"attribute names starting with 'Act' (§1.3)",
			`select {%L} from DB._* X, X.%L Y where %L like "Act%"`},
	}
	for _, s := range steps {
		fmt.Printf("\n-- %s\n   %s\n", s.title, s.q)
		res, err := db.Query(s.q)
		if err != nil {
			fatal(err)
		}
		fmt.Println("  ", res.Format())
	}
	fmt.Println("\n-- browse (dataguide paths, depth ≤ 2)")
	for _, a := range db.Browse(2, 12) {
		parts := make([]string, len(a.Path))
		for i, l := range a.Path {
			parts[i] = l.String()
		}
		fmt.Printf("   %-40s extent %d\n", strings.Join(parts, "."), a.ExtentLen)
	}
}
