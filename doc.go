// Package repro is a Go reproduction of Peter Buneman's PODS '97 tutorial
// "Semistructured Data": the edge-labeled graph data model, the
// select-from-where query language with regular path expressions (the
// UnQL/Lorel select fragment), structural recursion (UnQL's algebra), graph
// datalog over the edge relation, graph schemas with simulation-based
// conformance, strong DataGuides, query decomposition over sites, and a
// simulated native store.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduced results. The root package holds only
// the benchmark harness (bench_test.go); the library lives under
// internal/, with internal/core as the public facade.
package repro
