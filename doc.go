// Package repro is a Go reproduction of Peter Buneman's PODS '97 tutorial
// "Semistructured Data": the edge-labeled graph data model, the
// select-from-where query language with regular path expressions (the
// UnQL/Lorel select fragment), structural recursion (UnQL's algebra), graph
// datalog over the edge relation, graph schemas with simulation-based
// conformance, strong DataGuides, query decomposition over sites, and a
// simulated native store.
//
// # Query engine
//
// Query evaluation is split into three layers (see ARCHITECTURE.md for the
// full picture and extension points):
//
//   - a planner (internal/query/plan.go) that resolves every tree, label
//     and path variable to a fixed integer slot, orders the from-clause
//     pattern atoms by estimated selectivity, chooses an access path per
//     atom (forward lazy-DFA traversal, DataGuide-pruned evaluation, label
//     index posting-list seeks, or backward verification from the rarest
//     label over reverse edges), and pushes each where-conjunct to the
//     earliest atom at which its variables are bound;
//
//   - a pull-based iterator executor (internal/query/exec.go) — Volcano
//     style Next() operators over one flat slot array, with no per-binding
//     allocation on the join/filter hot path;
//
//   - iterator surfaces in the lower layers: pathexpr.Traversal (resumable
//     product traversal sharing the lazy-DFA cache), index.Cursor
//     (posting-list seeks), dataguide.ExtentCursor (guide-pruned extents),
//     and ssd.Graph.In (cached reverse adjacency).
//
// The original recursive tree-walking evaluator is retained as
// query.EvalNaive behind Options.Engine, cross-checked against the planned
// engine on the whole query test suite and ablated by BenchmarkPlannedVsNaive
// and `ssdbench -exp e12`.
//
// # Write path
//
// Updates flow through internal/mutate: typed mutation records are gathered
// into a Batch and applied copy-on-write (only touched adjacency slices are
// copied), yielding a new graph version plus the edge delta that drives
// incremental maintenance — index.LabelIndex/ValueIndex.Apply patch posting
// lists and the ordered entry array, dataguide.Guide.ApplyDelta extends the
// strong DataGuide for added edges and falls back to a rebuild only when a
// delete touches the accessible region. internal/core publishes each version
// as an MVCC snapshot behind an atomic pointer: readers keep querying the
// snapshot they started with while Begin/Apply/Commit installs the next one
// under a single-writer lock, and an optional write-ahead log
// (core.Database.OpenWAL) makes commits durable and replayable. Ablated by
// BenchmarkIncrementalVsRebuild and `ssdbench -exp e13`.
//
// # Parallel execution and serving
//
// Queries can fan their join work across a pool of shared-nothing worker
// executors (internal/query/parallel.go): the leading atom's rows are
// materialized in serial order, partitioned into morsels, executed by
// per-worker compiled plans, and merged in morsel order — so parallel
// output is byte-identical to serial output. core.Database.SetParallelism
// sets the per-database default Stmt.Query picks up; the per-statement
// plan pool hands out one plan per worker. cmd/ssdserve serves it all over
// HTTP/JSON (streamed NDJSON rows, $name parameters, per-request
// timeouts, WAL-backed writes via /mutate, graceful drain), backed by the
// database's LRU statement cache. Ablated by BenchmarkParallelVsSerial and
// `ssdbench -exp e15`.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduced results. The root package holds only
// the benchmark harness (bench_test.go); the library lives under
// internal/, with internal/core as the public facade.
package repro
