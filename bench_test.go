// Benchmarks backing the experiment tables of EXPERIMENTS.md. Each
// Benchmark* group corresponds to one experiment id from DESIGN.md §2; the
// cmd/ssdbench tool prints the same comparisons as formatted tables with
// derived columns (speedups, sizes).
package repro

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/bisim"
	"repro/internal/core"
	"repro/internal/dataguide"
	"repro/internal/datalog"
	"repro/internal/decomp"
	"repro/internal/index"
	"repro/internal/mutate"
	"repro/internal/pathexpr"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/schema"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/unql"
	"repro/internal/workload"
)

// Shared fixtures, built once.
var (
	moviesBySize = map[int]*ssd.Graph{}
	webBySize    = map[int]*ssd.Graph{}
)

func movieDB(entries int) *ssd.Graph {
	if g, ok := moviesBySize[entries]; ok {
		return g
	}
	g := workload.Movies(workload.DefaultMovieConfig(entries))
	moviesBySize[entries] = g
	return g
}

func webDB(pages int) *ssd.Graph {
	if g, ok := webBySize[pages]; ok {
		return g
	}
	g := workload.Web(workload.WebConfig{Pages: pages, OutLinks: 3, Seed: 7})
	webBySize[pages] = g
	return g
}

var movieSizes = []int{500, 5000, 25000}

// ---------------------------------------------------------------------------
// E1 / Figure 1: the paper's queries on the figure database.

func BenchmarkFig1Queries(b *testing.B) {
	g := workload.Fig1(false)
	queries := map[string]string{
		"titles":     `select T from DB.Entry.Movie.Title T`,
		"allen":      `select {Title: T} from DB.Entry.Movie M, M.Title T, M.(!Movie)* A where A = "Allen"`,
		"both-casts": `select {Name: %N} from DB.Entry._.Cast.(isint|Credit.Actors|Special-Guests)? C, C.%N L where isstring(%N)`,
	}
	for name, src := range queries {
		q := query.MustParse(src)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := query.Eval(q, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlannedVsNaive ablates the two query engines over the E1
// (path-heavy select-from-where) and E2 (browsing) workloads. The planned
// engine's flat-slot executor must show a large allocs/op reduction on the
// E1 path-heavy query — that is the refactor's whole point — and the
// index-seek access path should dominate on the E2 browsing shape.
func BenchmarkPlannedVsNaive(b *testing.B) {
	workloads := []struct{ name, src string }{
		{"e1-path-heavy", `select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = "Allen"`},
		{"e1-fixed-path", `select T from DB.Entry.Movie.Title T`},
		{"e2-browse-seek", `select X from DB._*.Episode X`},
	}
	for _, size := range []int{500, 5000} {
		g := movieDB(size)
		ix := index.BuildLabelIndex(g)
		for _, w := range workloads {
			q := query.MustParse(w.src)
			b.Run(fmt.Sprintf("naive/%s/entries=%d", w.name, size), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := query.EvalNaive(q, g); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("planned/%s/entries=%d", w.name, size), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := query.EvalOpts(q, g, query.Options{Minimize: true}); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("planned-indexed/%s/entries=%d", w.name, size), func(b *testing.B) {
				b.ReportAllocs()
				opts := query.Options{Minimize: true, Plan: query.PlanOptions{Label: ix}}
				for i := 0; i < b.N; i++ {
					if _, err := query.EvalOpts(q, g, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// E2: browsing queries — scan vs value index.

func BenchmarkBrowsingScan(b *testing.B) {
	for _, size := range movieSizes {
		g := movieDB(size)
		pred := pathexpr.CmpPred{Op: pathexpr.OpGT, Rhs: ssd.Int(65536)}
		b.Run(fmt.Sprintf("ints-gt-2_16/entries=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				index.ScanGraph(g, pred)
			}
		})
	}
}

func BenchmarkBrowsingIndexed(b *testing.B) {
	for _, size := range movieSizes {
		g := movieDB(size)
		ix := index.BuildValueIndex(g)
		b.Run(fmt.Sprintf("ints-gt-2_16/entries=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ix.Compare(pathexpr.OpGT, ssd.Int(65536))
			}
		})
	}
}

func BenchmarkBrowsingIndexBuild(b *testing.B) {
	for _, size := range movieSizes {
		g := movieDB(size)
		b.Run(fmt.Sprintf("entries=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				index.BuildValueIndex(g)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E3: path queries — NFA product vs lazy-DFA vs DataGuide.

var e3Queries = map[string]string{
	"fixed-path": "Entry.Movie.Title._",
	"deep-value": `_*."Bogart"`,
	"both-casts": "Entry._.Cast.(isint|Credit.Actors|Special-Guests)._",
}

func BenchmarkPathQueryNFA(b *testing.B) {
	for _, size := range movieSizes {
		g := movieDB(size)
		for name, src := range e3Queries {
			b.Run(fmt.Sprintf("%s/entries=%d", name, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					au := pathexpr.MustCompile(src)
					au.EvalNFA(g, g.Root())
				}
			})
		}
	}
}

func BenchmarkPathQueryLazyDFA(b *testing.B) {
	for _, size := range movieSizes {
		g := movieDB(size)
		for name, src := range e3Queries {
			b.Run(fmt.Sprintf("%s/entries=%d", name, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					au := pathexpr.MustCompile(src)
					au.Eval(g, g.Root())
				}
			})
		}
	}
}

func BenchmarkPathQueryDataGuide(b *testing.B) {
	for _, size := range movieSizes {
		g := movieDB(size)
		guide := dataguide.MustBuild(g)
		for name, src := range e3Queries {
			b.Run(fmt.Sprintf("%s/entries=%d", name, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					guide.Eval(pathexpr.MustCompile(src))
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// E4: datalog — naive vs semi-naive.

var reachProg = datalog.MustParseProgram(`
	reach(X) :- root(X).
	reach(Y) :- reach(X), edge(X, _, Y).`)

func BenchmarkDatalogNaive(b *testing.B) {
	for _, pages := range []int{200, 1000} {
		g := webDB(pages)
		b.Run(fmt.Sprintf("web/pages=%d", pages), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := datalog.NewEngine(g).Run(reachProg, datalog.Naive); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDatalogSemiNaive(b *testing.B) {
	for _, pages := range []int{200, 1000} {
		g := webDB(pages)
		b.Run(fmt.Sprintf("web/pages=%d", pages), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := datalog.NewEngine(g).Run(reachProg, datalog.SemiNaive); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDatalogChain(b *testing.B) {
	chain := ssd.New()
	cur := chain.Root()
	for i := 0; i < 300; i++ {
		cur = chain.AddLeaf(cur, ssd.Sym("next"))
	}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = datalog.NewEngine(chain).Run(reachProg, datalog.Naive)
		}
	})
	b.Run("seminaive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = datalog.NewEngine(chain).Run(reachProg, datalog.SemiNaive)
		}
	})
}

// ---------------------------------------------------------------------------
// E5: relational algebra vs query language on the encoding.

func BenchmarkRelEquivalence(b *testing.B) {
	rdb := workload.Relational(1000, 101, 3)
	g := relstore.EncodeRelational(rdb)
	movies, directors := rdb["movies"], rdb["directors"]
	b.Run("ra-select-project", func(b *testing.B) {
		someDirector := movies.Rows()[0][movies.Col("director")]
		for i := 0; i < b.N; i++ {
			relstore.Project(relstore.SelectEq(movies, "director", someDirector), "title")
		}
	})
	b.Run("query-select-project", func(b *testing.B) {
		someDirector := movies.Rows()[0][movies.Col("director")]
		s, _ := someDirector.Text()
		q := query.MustParse(fmt.Sprintf(`
			select {tuple: {title: T}}
			from DB.movies.tuple R, R.title T, R.director D
			where D = %q`, s))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := query.Eval(q, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ra-join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			relstore.Project(relstore.Join(movies, directors), "title", "born")
		}
	})
	b.Run("query-join", func(b *testing.B) {
		q := query.MustParse(`
			select {tuple: {title: T, born: B}}
			from DB.movies.tuple R, R.title T, R.director D,
			     DB.directors.tuple S, S.director D2, S.born B
			where D = D2`)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := query.Eval(q, g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E6: restructuring — memoized GExt vs tree unfolding.

func relabelDirector(l ssd.Label, _, _ ssd.NodeID, _ *ssd.Graph) unql.Action {
	if s, ok := l.Symbol(); ok && s == "Director" {
		return unql.RelabelTo(ssd.Sym("DirectedBy"))
	}
	return unql.Keep(l)
}

func BenchmarkRestructureGExt(b *testing.B) {
	cfg := workload.DefaultMovieConfig(5000)
	cfg.RefProb = 0
	g := workload.Movies(cfg)
	b.Run("acyclic-5k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			unql.GExt(g, relabelDirector)
		}
	})
	cyc := movieDB(5000)
	b.Run("cyclic-5k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			unql.GExt(cyc, relabelDirector)
		}
	})
}

func BenchmarkRestructureTreeUnfold(b *testing.B) {
	cfg := workload.DefaultMovieConfig(5000)
	cfg.RefProb = 0
	g := workload.Movies(cfg)
	b.Run("acyclic-5k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := unql.GExtTree(g, relabelDirector, 64); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E7: decomposition — serial vs parallel site evaluation.

func BenchmarkDecomposition(b *testing.B) {
	g := movieDB(25000)
	src := `_*."Bogart"`
	for _, sites := range []int{1, 2, 4, 8} {
		p := decomp.PartitionBFS(g, sites)
		b.Run(fmt.Sprintf("serial/sites=%d", sites), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				decomp.Eval(g, pathexpr.MustCompile(src), p, false)
			}
		})
		b.Run(fmt.Sprintf("parallel/sites=%d", sites), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				decomp.Eval(g, pathexpr.MustCompile(src), p, true)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E8: schema pruning.

const movieSchemaSrc = `
{Entry: #e{Movie: {Title: {isstring},
                   Cast: {isint: {isstring},
                          Credit: {Actors: {isstring}}},
                   Director: {isstring},
                   References: #e,
                   Is-referenced-in: #e},
           TV-Show: {Title: {isstring},
                     Cast: {Special-Guests: {isstring}},
                     Episode: {isint},
                     References: #e,
                     Is-referenced-in: #e}}}`

func BenchmarkSchemaPruning(b *testing.B) {
	g := movieDB(25000)
	s := schema.MustParse(movieSchemaSrc)
	queries := map[string]string{
		"selective":  "Entry.TV-Show.Episode._",
		"impossible": "Entry.Movie.Budget._",
	}
	for name, src := range queries {
		b.Run("plain/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pathexpr.MustCompile(src).Eval(g, g.Root())
			}
		})
		b.Run("pruned/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Prune(pathexpr.MustCompile(src)).Eval(g, g.Root())
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E9: DataGuide construction.

func BenchmarkDataGuideBuild(b *testing.B) {
	b.Run("movies-regular-5k", func(b *testing.B) {
		g := movieDB(5000)
		for i := 0; i < b.N; i++ {
			dataguide.MustBuild(g)
		}
	})
	b.Run("acedb-trees", func(b *testing.B) {
		g := workload.ACeDB(workload.BioConfig{Objects: 200, MaxDepth: 10, Fanout: 3, Seed: 11})
		for i := 0; i < b.N; i++ {
			dataguide.MustBuild(g)
		}
	})
	b.Run("web-irregular-300", func(b *testing.B) {
		g := webDB(300)
		for i := 0; i < b.N; i++ {
			if _, ok := dataguide.Build(g, 2_000_000); !ok {
				b.Fatal("cap hit")
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E10: storage clustering (page faults are the figure of merit; this bench
// reports ns/op for the same traversals so regressions surface).

func BenchmarkStorageScan(b *testing.B) {
	g := movieDB(5000)
	for _, c := range []storage.Clustering{storage.ClusterDFS, storage.ClusterRandom} {
		b.Run(c.String(), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "pages.ssdp")
			if err := storage.WritePageFile(path, g, c, 1024); err != nil {
				b.Fatal(err)
			}
			ps, err := storage.OpenPageFile(path, 32*1024)
			if err != nil {
				b.Fatal(err)
			}
			defer ps.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ssd.ReachableFrom(ps, ps.Root())
			}
			st := ps.Stats()
			b.ReportMetric(float64(st.Misses)/float64(b.N), "faults/op")
		})
	}
}

// BenchmarkPagedVsInMemory runs the E1 path-heavy query through the planned
// engine against the in-memory graph and against the paged store with a warm
// pool large enough to hold the working set. The acceptance bar is paged
// within 2x of in-memory: the buffer pool's lock/lookup overhead must stay a
// constant factor, not change the complexity class.
func BenchmarkPagedVsInMemory(b *testing.B) {
	g := movieDB(5000)
	q := query.MustParse(`select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = "Allen"`)
	run := func(b *testing.B, st ssd.GraphStore) {
		b.ReportAllocs()
		p, err := query.NewPlan(q, st, query.PlanOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := p.EvalGraph(query.Options{Minimize: true}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("in-memory", func(b *testing.B) { run(b, g) })
	b.Run("paged-warm", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "pages.ssdp")
		if err := storage.WritePageFile(path, g, storage.ClusterDFS, storage.DefaultPageSize); err != nil {
			b.Fatal(err)
		}
		ps, err := storage.OpenPageFile(path, storage.DefaultPoolBytes)
		if err != nil {
			b.Fatal(err)
		}
		defer ps.Close()
		// Warm the pool: one full scan faults every page in.
		ssd.ReachableFrom(ps, ps.Root())
		b.ResetTimer()
		run(b, ps)
	})
}

func BenchmarkStorageCodec(b *testing.B) {
	g := movieDB(5000)
	data := storage.Encode(g)
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			storage.Encode(g)
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := storage.Decode(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E11: bisimulation — naive vs incremental refinement.

func BenchmarkBisimNaive(b *testing.B) {
	b.Run("movies-5k", func(b *testing.B) {
		g := movieDB(5000)
		for i := 0; i < b.N; i++ {
			bisim.ClassesNaive(g)
		}
	})
	b.Run("chain-2k", func(b *testing.B) {
		g := chainGraph(2000)
		for i := 0; i < b.N; i++ {
			bisim.ClassesNaive(g)
		}
	})
}

func BenchmarkBisimIncremental(b *testing.B) {
	b.Run("movies-5k", func(b *testing.B) {
		g := movieDB(5000)
		for i := 0; i < b.N; i++ {
			bisim.Classes(g)
		}
	})
	b.Run("chain-2k", func(b *testing.B) {
		g := chainGraph(2000)
		for i := 0; i < b.N; i++ {
			bisim.Classes(g)
		}
	})
}

func chainGraph(n int) *ssd.Graph {
	g := ssd.New()
	cur := g.Root()
	for i := 0; i < n; i++ {
		cur = g.AddLeaf(cur, ssd.Sym("next"))
	}
	return g
}

// ---------------------------------------------------------------------------
// E13: incremental vs full-rebuild maintenance of derived structures. Each
// iteration applies one single-edge batch (plus its fresh leaf) through the
// write path, then brings the label index, value index and DataGuide up to
// date — either by Apply/ApplyDelta from the batch's delta or by rebuilding
// from the new graph. `ssdbench -exp e13` prints the same comparison across
// update:query mixes.

func BenchmarkIncrementalVsRebuild(b *testing.B) {
	setup := func(b *testing.B) (*ssd.Graph, *index.LabelIndex, *index.ValueIndex, *dataguide.Guide, []ssd.NodeID) {
		b.Helper()
		g := workload.Movies(workload.DefaultMovieConfig(5000)) // private: mutated below
		var sources []ssd.NodeID
		for _, e := range g.Out(g.Root()) {
			sources = append(sources, e.To)
		}
		return g, index.BuildLabelIndex(g), index.BuildValueIndex(g), dataguide.MustBuild(g), sources
	}
	oneEdgeBatch := func(g *ssd.Graph, src ssd.NodeID) (*ssd.Graph, mutate.Result) {
		bt := mutate.NewBatch(g)
		tag := bt.AddNode()
		leaf := bt.AddNode()
		if err := bt.AddEdge(src, ssd.Sym("Tag"), tag); err != nil {
			panic(err)
		}
		if err := bt.AddEdge(tag, ssd.Str("tag-value"), leaf); err != nil {
			panic(err)
		}
		g2, res, err := mutate.ApplyCOW(g, bt)
		if err != nil {
			panic(err)
		}
		return g2, res
	}

	b.Run("incremental", func(b *testing.B) {
		g, lx, vx, guide, sources := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var res mutate.Result
			g, res = oneEdgeBatch(g, sources[i%len(sources)])
			lx = lx.Apply(res.Delta)
			vx = vx.Apply(res.Delta)
			ng, ok := guide.ApplyDelta(g, res.Delta, 0)
			if !ok {
				// Garbage-cap fallback: the amortized cost of the design.
				ng = dataguide.MustBuild(g)
			}
			guide = ng
		}
		if len(vx.Exact(ssd.Str("tag-value"))) != b.N {
			b.Fatal("maintained value index lost updates")
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		g, lx, vx, guide, sources := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g, _ = oneEdgeBatch(g, sources[i%len(sources)])
			lx = index.BuildLabelIndex(g)
			vx = index.BuildValueIndex(g)
			guide = dataguide.MustBuild(g)
		}
		_, _, _ = lx, vx, guide
	})
}

// ---------------------------------------------------------------------------
// E15: intra-query parallelism. The morsel-driven parallel scan fans the
// join work of the leading atom's rows across worker executors; on the
// E1-style path-heavy scan it must show ≥2x at 4 workers over the serial
// executor (the merge is order-preserving, so the output is identical).

func BenchmarkParallelVsSerial(b *testing.B) {
	g := movieDB(50000)
	const src = `select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = "Allen"`
	q := query.MustParse(src)
	drain := func(b *testing.B, cur *query.Cursor) {
		b.Helper()
		n := 0
		for cur.Next() {
			n++
		}
		if err := cur.Err(); err != nil {
			b.Fatal(err)
		}
		cur.Close()
		if n == 0 {
			b.Fatal("no rows")
		}
	}
	b.Run("serial", func(b *testing.B) {
		p, err := query.NewPlan(q, g, query.PlanOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cur, err := p.Cursor(nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			drain(b, cur)
		}
	})
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("parallel/workers=%d", workers), func(b *testing.B) {
			p, err := query.NewPlan(q, g, query.PlanOptions{})
			if err != nil {
				b.Fatal(err)
			}
			ws := make([]*query.Plan, workers)
			for i := range ws {
				if ws[i], err = query.NewPlan(q, g, query.PlanOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cur, err := p.CursorParallel(nil, nil, ws, 0)
				if err != nil {
					b.Fatal(err)
				}
				drain(b, cur)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E14: the statement lifecycle. Prepared re-execution must beat one-shot
// (no re-lex/re-parse/re-plan), and streaming Rows must allocate less per
// row than the materializing QueryRows wrapper.

func BenchmarkPreparedVsOneShot(b *testing.B) {
	g := movieDB(2000)
	const litSrc = `select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = "Allen"`
	const paramSrc = `select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = $who`

	b.Run("oneshot-parse-plan-exec", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q, err := query.Parse(litSrc)
			if err != nil {
				b.Fatal(err)
			}
			p, err := query.NewPlan(q, g, query.PlanOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.EvalGraph(query.Options{Minimize: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared-exec", func(b *testing.B) {
		db := core.FromGraph(g)
		s, err := db.Prepare(paramSrc)
		if err != nil {
			b.Fatal(err)
		}
		who := core.P("who", "Allen")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec(context.Background(), who); err != nil {
				b.Fatal(err)
			}
		}
	})

	const rowsSrc = `select T from DB.Entry.Movie M, M.Title T`
	b.Run("rows-streaming", func(b *testing.B) {
		db := core.FromGraph(g)
		s, err := db.Prepare(rowsSrc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := s.Query(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for rows.Next() {
				_ = rows.Env()
				n++
			}
			rows.Close()
			if n == 0 {
				b.Fatal("no rows")
			}
		}
	})
	b.Run("rows-materialized", func(b *testing.B) {
		db := core.FromGraph(g)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			envs, err := db.QueryRows(rowsSrc)
			if err != nil {
				b.Fatal(err)
			}
			if len(envs) == 0 {
				b.Fatal("no rows")
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Instrumentation overhead: the same streaming query with tracing off
// (production hot path — must stay allocation-light and within a few
// percent of the pre-instrumentation executor) and with a trace attached
// (the ?trace=1 / slow-query path, which pays a timestamp per pulled row).

func BenchmarkInstrumentationOverhead(b *testing.B) {
	g := movieDB(2000)
	const src = `select {Title: T} from DB.Entry.Movie M, M.Title T, M.Cast._* A where A = "Allen"`
	run := func(b *testing.B, traced bool) {
		db := core.FromGraph(g)
		s, err := db.Prepare(src)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var rows *core.Rows
			if traced {
				rows, err = s.QueryTraced(context.Background(), new(core.QueryTrace))
			} else {
				rows, err = s.Query(context.Background())
			}
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for rows.Next() {
				n++
			}
			rows.Close()
			if n == 0 {
				b.Fatal("no rows")
			}
		}
	}
	b.Run("untraced", func(b *testing.B) { run(b, false) })
	b.Run("traced", func(b *testing.B) { run(b, true) })
}

// ---------------------------------------------------------------------------
// Cost-based vs heuristic planning on a skewed distribution. The skewed
// workload makes the structural heuristic pick the wide Reviews.Score atom
// before the near-empty Tag="needle" atom; the statistics-fed cost model
// inverts that, so the same query runs against far smaller intermediate
// frontiers. The two sub-benchmarks run the exact same query on the exact
// same graph — only the planner's atom order differs.

func BenchmarkCostBasedVsHeuristic(b *testing.B) {
	g := workload.Skewed(workload.DefaultSkewConfig(2000))
	st := stats.Build(g)
	q := query.MustParse(`
		select T
		from DB.Entry.Movie M,
		     M.Reviews.Score S,
		     M.Tag X,
		     M.Title T
		where S > 0 and X = "needle"`)
	run := func(b *testing.B, po query.PlanOptions) {
		b.Helper()
		p, err := query.NewPlan(q, g, po)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cur, err := p.Cursor(nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for cur.Next() {
				n++
			}
			if err := cur.Err(); err != nil {
				b.Fatal(err)
			}
			cur.Close()
			if n == 0 {
				b.Fatal("no rows")
			}
		}
	}
	b.Run("heuristic", func(b *testing.B) { run(b, query.PlanOptions{Heuristic: true}) })
	b.Run("cost-based", func(b *testing.B) { run(b, query.PlanOptions{Stats: st}) })
}

// BenchmarkStatsMaintenance prices the statistics lifecycle: the full
// one-pass build against the copy-on-write delta Apply the commit path runs.
func BenchmarkStatsMaintenance(b *testing.B) {
	g := workload.Movies(workload.DefaultMovieConfig(5000))
	b.Run("build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			stats.Build(g)
		}
	})
	b.Run("apply-delta", func(b *testing.B) {
		st := stats.Build(g)
		root := g.Root()
		d := ssd.Delta{Added: []ssd.EdgeRec{{From: root, Label: ssd.Sym("Entry"), To: root}}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Apply(d)
		}
	})
}
